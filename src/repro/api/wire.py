"""JSON wire format for requests and responses crossing process boundaries.

The multi-process serving stack (:class:`~repro.serve.pool.EnginePool`
workers, remote workspaces) moves :class:`~repro.api.SelectionRequest` and
:class:`~repro.api.SelectionResponse` objects between processes as JSON
text.  This module owns the codecs for the payloads those objects carry:

* selection-projection queries (:class:`~repro.queries.ops.SPQuery` and
  every built-in predicate) — the only query family the engines serve;
* fairness constraints (:class:`~repro.core.fairness.GroupRepresentation`);
* sub-tables (column-ordered cell values plus provenance), reconstructed
  into the same :class:`~repro.core.SubTable`/:class:`~repro.frame.DataFrame`
  structures the in-process path produces.

The encoding is lossless by construction: ``decode_query(encode_query(q))``
compares equal to ``q`` (the query dataclasses are frozen value objects),
and numpy scalars are narrowed to the Python numbers they wrap, which the
predicates' ``__eq__`` treats as identical.  Unsupported query types raise
:class:`WireFormatError` — the wire never silently drops a constraint.
"""

from __future__ import annotations

import math
from typing import Any, Optional

import numpy as np

from repro.core.fairness import GroupRepresentation
from repro.core.result import SubTable
from repro.frame.column import Column
from repro.frame.frame import DataFrame
from repro.queries.ops import SPQuery
from repro.queries.predicates import Eq, Gt, InRange, InSet, IsMissing, Lt

#: Bumped when the wire layout changes incompatibly; decoders reject
#: payloads written by a different version instead of guessing.
WIRE_VERSION = 1


class WireFormatError(TypeError):
    """A payload cannot be encoded to — or decoded from — the wire format."""


def _scalar(value: Any) -> Any:
    """Narrow numpy scalars to the Python numbers JSON can carry."""
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    return value


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------

def _encode_predicate(predicate: Any) -> dict:
    if isinstance(predicate, Eq):
        return {"op": "eq", "column": predicate.column,
                "value": _scalar(predicate.value)}
    if isinstance(predicate, InRange):
        return {"op": "in_range", "column": predicate.column,
                "low": _scalar(predicate.low), "high": _scalar(predicate.high)}
    if isinstance(predicate, Gt):
        return {"op": "gt", "column": predicate.column,
                "threshold": _scalar(predicate.threshold)}
    if isinstance(predicate, Lt):
        return {"op": "lt", "column": predicate.column,
                "threshold": _scalar(predicate.threshold)}
    if isinstance(predicate, IsMissing):
        return {"op": "is_missing", "column": predicate.column}
    if isinstance(predicate, InSet):
        return {"op": "in_set", "column": predicate.column,
                "values": [_scalar(v) for v in predicate.values]}
    raise WireFormatError(
        f"cannot encode predicate type {type(predicate).__name__}; the wire "
        "format covers the built-in predicates (Eq, InRange, Gt, Lt, "
        "IsMissing, InSet)"
    )


def _decode_predicate(payload: dict) -> Any:
    op = payload.get("op")
    if op == "eq":
        return Eq(payload["column"], payload["value"])
    if op == "in_range":
        return InRange(payload["column"], payload["low"], payload["high"])
    if op == "gt":
        return Gt(payload["column"], payload["threshold"])
    if op == "lt":
        return Lt(payload["column"], payload["threshold"])
    if op == "is_missing":
        return IsMissing(payload["column"])
    if op == "in_set":
        return InSet(payload["column"], payload["values"])
    raise WireFormatError(f"unknown predicate op {op!r} on the wire")


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------

def encode_query(query: Any) -> Optional[dict]:
    """Wire payload for a query (``None`` stays ``None``: the full table)."""
    if query is None:
        return None
    if isinstance(query, SPQuery):
        return {
            "type": "sp",
            "predicates": [_encode_predicate(p) for p in query.predicates],
            "projection": (None if query.projection is None
                           else list(query.projection)),
        }
    raise WireFormatError(
        f"cannot encode query type {type(query).__name__}; only SPQuery "
        "(and None) cross the wire"
    )


def decode_query(payload: Optional[dict]) -> Any:
    if payload is None:
        return None
    if payload.get("type") != "sp":
        raise WireFormatError(f"unknown query type {payload.get('type')!r}")
    return SPQuery(
        predicates=[_decode_predicate(p) for p in payload["predicates"]],
        projection=payload["projection"],
    )


# ---------------------------------------------------------------------------
# Fairness constraints
# ---------------------------------------------------------------------------

def encode_fairness(fairness: Any) -> Optional[dict]:
    if fairness is None:
        return None
    if isinstance(fairness, GroupRepresentation):
        return {
            "type": "group_representation",
            "column": fairness.column,
            "min_per_group": int(fairness.min_per_group),
            "min_group_share": float(fairness.min_group_share),
        }
    raise WireFormatError(
        f"cannot encode fairness constraint {type(fairness).__name__}; only "
        "GroupRepresentation crosses the wire"
    )


def decode_fairness(payload: Optional[dict]) -> Any:
    if payload is None:
        return None
    if payload.get("type") != "group_representation":
        raise WireFormatError(
            f"unknown fairness constraint type {payload.get('type')!r}"
        )
    return GroupRepresentation(
        column=payload["column"],
        min_per_group=payload["min_per_group"],
        min_group_share=payload["min_group_share"],
    )


# ---------------------------------------------------------------------------
# Sub-tables
# ---------------------------------------------------------------------------

def encode_subtable(subtable: SubTable) -> dict:
    """Column-ordered cells plus provenance; missing cells become ``null``."""
    columns_data = []
    for name in subtable.columns:
        column = subtable.frame.column(name)
        if column.is_numeric:
            values = [None if math.isnan(v) else float(v)
                      for v in column.values]
        else:
            values = [None if v is None else str(v) for v in column.values]
        columns_data.append({"name": name, "kind": column.kind,
                             "values": values})
    return {
        "row_indices": [int(i) for i in subtable.row_indices],
        "columns": list(subtable.columns),
        "targets": list(subtable.targets),
        "cells": columns_data,
    }


def decode_subtable(payload: dict) -> SubTable:
    # Column's coercion maps null to NaN (numeric) / None (categorical).
    columns = [
        Column(spec["name"], spec["values"], kind=spec["kind"])
        for spec in payload["cells"]
    ]
    return SubTable(
        frame=DataFrame(columns),
        row_indices=list(payload["row_indices"]),
        columns=list(payload["columns"]),
        targets=list(payload["targets"]),
    )
