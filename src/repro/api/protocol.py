"""The unified ``Selector`` protocol (paper Algorithm 2's two-phase shape).

Every selection algorithm in the repository — SubTab itself, the seven
baselines, and anything registered by users — satisfies one structural
protocol: a one-time preprocessing phase (``fit``, with ``prepare`` accepted
as an alias for historical call sites) followed by per-display selection.
The :class:`repro.api.Engine` drives any such object; the registry
(:func:`repro.api.make_selector`) constructs them by name.
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, runtime_checkable

from repro.binning.pipeline import BinnedTable
from repro.core.result import SubTable
from repro.frame.frame import DataFrame


@runtime_checkable
class Selector(Protocol):
    """Structural interface of a sub-table selection algorithm.

    ``fit`` runs the one-time preprocessing phase over the full table
    (optionally reusing a shared binning) and returns the selector;
    ``select`` produces a k x l :class:`~repro.core.SubTable` of the table
    or of a query result over it.  ``is_fitted`` reports whether the
    preprocessing phase has run.
    """

    name: str

    def fit(
        self, frame: DataFrame, binned: Optional[BinnedTable] = None
    ) -> "Selector":
        ...

    def select(
        self,
        k: int,
        l: int,
        query=None,
        targets: Sequence[str] = (),
    ) -> SubTable:
        ...

    @property
    def is_fitted(self) -> bool:
        ...
