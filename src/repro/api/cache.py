"""Selection caching primitives shared by the Engine and the serving layer.

Historically these lived in :mod:`repro.serve.service`; they moved here when
the serving layer was re-layered on :class:`repro.api.Engine` so that the
Engine (which every selector now runs behind) owns the memoization.  The
:mod:`repro.serve` module keeps re-exporting them.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional

FULL_TABLE_FINGERPRINT = "<full-table>"


def query_fingerprint(query: Any) -> str:
    """A stable cache key for a query object.

    ``None`` (the full table) has a fixed fingerprint.  Objects exposing
    ``fingerprint()`` are asked directly; otherwise ``describe()`` (the
    :class:`~repro.queries.ops.SPQuery` protocol, which renders predicates
    with their values) is used, prefixed with the type name.  Custom query
    classes should make ``describe()``/``fingerprint()`` injective over
    semantically distinct queries — two queries with the same fingerprint
    share a cache slot.

    Queries exposing neither method are rejected: falling back to
    ``repr()`` would embed memory addresses for classes without a custom
    ``__repr__``, and a recycled address silently serves another query's
    cached selection.
    """
    if query is None:
        return FULL_TABLE_FINGERPRINT
    fingerprint = getattr(query, "fingerprint", None)
    if callable(fingerprint):
        return str(fingerprint())
    describe = getattr(query, "describe", None)
    if callable(describe):
        return f"{type(query).__name__}:{describe()}"
    raise TypeError(
        f"cannot fingerprint {type(query).__name__}: query objects served "
        "through the Engine must expose fingerprint() or describe()"
    )


@dataclass
class CacheStats:
    """Counters of one :class:`LRUCache` (a snapshot, not a live view)."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A small least-recently-used map with hit/miss counters.

    Plain ``OrderedDict`` bookkeeping — no threads, no TTL — because the
    serving loop is synchronous; the interesting property is the eviction
    order and the stats the benchmarks read.
    """

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable) -> Optional[Any]:
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            size=len(self._entries),
            maxsize=self.maxsize,
        )
