"""Selection caching primitives shared by the Engine and the serving layer.

Historically these lived in :mod:`repro.serve.service`; they moved here when
the serving layer was re-layered on :class:`repro.api.Engine` so that the
Engine (which every selector now runs behind) owns the memoization.  The
:mod:`repro.serve` module keeps re-exporting them.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional

FULL_TABLE_FINGERPRINT = "<full-table>"


def stable_hash64(data: "bytes | str") -> int:
    """A process-stable 64-bit content hash (never ``hash()``, which is
    salted per interpreter).  Both routing layers — the pool's worker
    affinity and the cluster ring — key on this one function, so "same
    request, same shard" holds across layers and across restarts."""
    if isinstance(data, str):
        data = data.encode("utf-8")
    return int.from_bytes(hashlib.sha1(data).digest()[:8], "big")


def query_fingerprint(query: Any) -> str:
    """A stable cache key for a query object.

    ``None`` (the full table) has a fixed fingerprint.  Objects exposing
    ``fingerprint()`` are asked directly; otherwise ``describe()`` (the
    :class:`~repro.queries.ops.SPQuery` protocol, which renders predicates
    with their values) is used, prefixed with the type name.  Custom query
    classes should make ``describe()``/``fingerprint()`` injective over
    semantically distinct queries — two queries with the same fingerprint
    share a cache slot.

    Queries exposing neither method are rejected: falling back to
    ``repr()`` would embed memory addresses for classes without a custom
    ``__repr__``, and a recycled address silently serves another query's
    cached selection.
    """
    if query is None:
        return FULL_TABLE_FINGERPRINT
    fingerprint = getattr(query, "fingerprint", None)
    if callable(fingerprint):
        return str(fingerprint())
    describe = getattr(query, "describe", None)
    if callable(describe):
        return f"{type(query).__name__}:{describe()}"
    raise TypeError(
        f"cannot fingerprint {type(query).__name__}: query objects served "
        "through the Engine must expose fingerprint() or describe()"
    )


@dataclass
class CacheStats:
    """Counters of one :class:`LRUCache` (a snapshot, not a live view)."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A small least-recently-used map with hit/miss counters.

    Plain ``OrderedDict`` bookkeeping — no TTL — guarded by one re-entrant
    lock so the concurrent serving layers (:class:`~repro.api.Workspace`
    engine routing, threaded request handlers over one Engine) can share an
    instance.  Single-threaded semantics are unchanged: the same eviction
    order, the same hit/miss counters, and ``stats`` stays internally
    consistent (``hits + misses`` equals the number of ``get`` calls, and
    ``size`` never exceeds ``maxsize``) no matter how many threads hammer
    the cache.
    """

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.RLock()

    def get(self, key: Hashable) -> Optional[Any]:
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> list:
        """Insert ``key`` and return the ``(key, value)`` pairs evicted."""
        evicted = []
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                evicted.append(self._entries.popitem(last=False))
        return evicted

    def pop(self, key: Hashable, default: Optional[Any] = None) -> Optional[Any]:
        """Remove ``key`` and return its value (``default`` when absent)."""
        with self._lock:
            return self._entries.pop(key, default)

    def keys(self) -> list:
        """Current keys, least recently used first (a snapshot)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self.hits,
                misses=self.misses,
                size=len(self._entries),
                maxsize=self.maxsize,
            )
