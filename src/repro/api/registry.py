"""String-keyed selector registry: ``make_selector("subtab" | "greedy" | ...)``.

One factory per algorithm, covering SubTab and every baseline of the paper
(Section 6.1).  The registry is what lets the Engine, the experiment
harness, and the CLI construct any algorithm from a name — and what lets
new backends plug in without touching those layers: call
:func:`register_selector` with a factory and the whole serving surface
(Engine caching, artifact persistence, CLI ``--algorithm``) picks it up.

Factories receive the shared :class:`~repro.core.config.SubTabConfig`
(source of the seed and, where relevant, the full pipeline configuration)
plus algorithm-specific keyword options forwarded verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.baselines.base import BaseSelector
from repro.baselines.embdi_baseline import EmbDISelector
from repro.baselines.greedy import GreedySelector, SemiGreedySelector
from repro.baselines.greedy_approx import ApproxGreedySelector
from repro.baselines.mab import MABSelector
from repro.baselines.naive_cluster import NaiveClusteringSelector
from repro.baselines.random_search import RandomSelector
from repro.baselines.subtab_adapter import SubTabSelector
from repro.core.config import SubTabConfig


@dataclass(frozen=True)
class SelectorSpec:
    """One registry entry: the factory plus descriptive metadata."""

    name: str
    factory: Callable[..., BaseSelector]
    description: str
    interactive: bool  # fast enough for per-display use (paper Sec. 6.1 split)


_REGISTRY: dict[str, SelectorSpec] = {}
_ALIASES: dict[str, str] = {}


def register_selector(
    name: str,
    factory: Callable[..., BaseSelector],
    *,
    description: str = "",
    interactive: bool = False,
    aliases: tuple = (),
    overwrite: bool = False,
) -> None:
    """Register ``factory`` under ``name`` (and optional aliases).

    The factory is called as ``factory(config, **options)`` where ``config``
    is a :class:`SubTabConfig` and ``options`` are the keyword arguments of
    :func:`make_selector`.  Existing names are protected unless
    ``overwrite=True``.
    """
    key = name.lower()
    if not overwrite and (key in _REGISTRY or key in _ALIASES):
        raise ValueError(f"selector {name!r} is already registered")
    _REGISTRY[key] = SelectorSpec(
        name=key, factory=factory, description=description, interactive=interactive
    )
    for alias in aliases:
        alias_key = alias.lower()
        if not overwrite and (alias_key in _REGISTRY or alias_key in _ALIASES):
            raise ValueError(f"selector alias {alias!r} is already registered")
        _ALIASES[alias_key] = key


def resolve_name(name: str) -> str:
    """Canonical registry key for ``name`` (aliases resolved); raises if unknown."""
    key = name.lower()
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown selector kind {name!r}; registered: {known}")
    return key


def selector_spec(name: str) -> SelectorSpec:
    """The :class:`SelectorSpec` registered under ``name``."""
    return _REGISTRY[resolve_name(name)]


def selector_names() -> list[str]:
    """Canonical names of all registered selectors, sorted."""
    return sorted(_REGISTRY)


def selector_aliases(name: str) -> list[str]:
    """Sorted aliases registered for canonical selector ``name``."""
    key = resolve_name(name)
    return sorted(alias for alias, target in _ALIASES.items() if target == key)


def make_selector(
    name: str,
    config: Optional[SubTabConfig] = None,
    **options,
) -> BaseSelector:
    """Construct the selector registered under ``name``.

    ``config`` carries the shared pipeline configuration (seed, binning
    knobs, and — for subtab — the full Algorithm-2 parameters); ``options``
    are forwarded to the algorithm's constructor (e.g. ``time_budget`` for
    RAN, ``iterations`` for MAB).  The selector is returned *unprepared*;
    call ``prepare``/``fit`` or hand it to an :class:`~repro.api.Engine`.
    """
    spec = selector_spec(name)
    return spec.factory(config or SubTabConfig(), **options)


# ---------------------------------------------------------------------------
# Built-in algorithms (paper Section 6.1)
# ---------------------------------------------------------------------------

def _make_subtab(config: SubTabConfig, **options) -> SubTabSelector:
    return SubTabSelector(config=config, **options)


def _make_ran(config: SubTabConfig, **options) -> RandomSelector:
    options.setdefault("seed", config.seed)
    return RandomSelector(**options)


def _make_nc(config: SubTabConfig, **options) -> NaiveClusteringSelector:
    options.setdefault("seed", config.seed)
    return NaiveClusteringSelector(**options)


def _make_greedy(config: SubTabConfig, **options) -> GreedySelector:
    options.setdefault("seed", config.seed)
    return GreedySelector(**options)


def _make_semigreedy(config: SubTabConfig, **options) -> SemiGreedySelector:
    options.setdefault("seed", config.seed)
    return SemiGreedySelector(**options)


def _make_greedy_approx(config: SubTabConfig, **options) -> ApproxGreedySelector:
    options.setdefault("seed", config.seed)
    return ApproxGreedySelector(**options)


def _make_mab(config: SubTabConfig, **options) -> MABSelector:
    options.setdefault("seed", config.seed)
    return MABSelector(**options)


def _make_embdi(config: SubTabConfig, **options) -> EmbDISelector:
    options.setdefault("seed", config.seed)
    options.setdefault("word2vec", config.word2vec)
    return EmbDISelector(**options)


register_selector(
    "subtab", _make_subtab, interactive=True,
    description="SubTab (Alg. 2): cell embedding + centroid selection",
)
register_selector(
    "ran", _make_ran, interactive=True, aliases=("random",),
    description="RAN: best of random draws under a time budget",
)
register_selector(
    "nc", _make_nc, interactive=True, aliases=("naive", "naive_cluster"),
    description="NC: KMeans over raw one-hot encodings",
)
register_selector(
    "greedy", _make_greedy,
    description="Greedy (Alg. 1): exhaustive columns + greedy rows",
)
register_selector(
    "semigreedy", _make_semigreedy,
    description="SemiGreedy: any-time greedy with random column order",
)
register_selector(
    "greedy-approx", _make_greedy_approx, interactive=True,
    aliases=("greedy_approx", "stochastic-greedy"),
    description="Greedy (Sec. 4): sampled row stage, (1-1/e-eps) expected",
)
register_selector(
    "mab", _make_mab,
    description="MAB: UCB bandit over joint row/column arms",
)
register_selector(
    "embdi", _make_embdi,
    description="EmbDI: centroid selection over graph-walk embeddings",
)
