"""Workspace: route requests across many datasets and algorithms.

The :class:`~repro.api.Engine` is a per-dataset serving kernel; a
:class:`Workspace` is the front door above it.  It owns an
:class:`~repro.api.ArtifactStore` and serves any
:class:`~repro.api.SelectionRequest` that names a ``dataset`` (and
optionally an ``algorithm``):

* engines are loaded **lazily** from the store on first use and kept in a
  capacity-bounded LRU — a workspace over hundreds of stored datasets holds
  only the hot few in memory, evicting the least recently served;
* :meth:`select` routes one request; :meth:`select_many` serves a batch,
  grouped by engine so each engine is resolved once per batch and its
  selection LRU sees all of its requests together (responses come back in
  request order);
* responses are exactly what the underlying ``Engine.select`` produces —
  routing adds no transformation, so per-engine and workspace serving are
  bit-identical.

Routing is thread-safe (the engine table is a locked LRU); determinism of
concurrent selects on one engine is the selector's own affair, as it is for
a bare Engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.api.cache import LRUCache
from repro.api.engine import Engine
from repro.api.registry import resolve_name
from repro.api.request import SelectionRequest, SelectionResponse
from repro.api.store import ArtifactStore


class WorkspaceError(RuntimeError):
    """A request cannot be routed (no dataset named, unknown routing key)."""


@dataclass(frozen=True)
class WorkspaceStats:
    """Routing counters of one workspace (a snapshot)."""

    served: int
    engine_loads: int
    engine_evictions: int
    capacity: int
    resident: tuple

    def to_json(self) -> dict:
        """JSON-serializable snapshot, shaped like every serving-stats
        object (``type`` + ``served`` + detail) so workspace, pool, and
        cluster accounting report comparable fields."""
        return {
            "type": "workspace",
            "served": self.served,
            "engine_loads": self.engine_loads,
            "engine_evictions": self.engine_evictions,
            "capacity": self.capacity,
            "resident": [list(key) for key in self.resident],
        }


class Workspace:
    """Multi-dataset serving surface over an :class:`ArtifactStore`.

    Parameters
    ----------
    store:
        The artifact store (or a path, which is opened as one).
    capacity:
        Maximum engines kept loaded at once; the least recently served is
        evicted when a new dataset/algorithm pair is faulted in.
    cache_size:
        Selection-LRU capacity of each loaded engine.
    default_algorithm:
        Algorithm used when a request leaves ``algorithm`` unset; ``None``
        defers to each artifact's persisted algorithm.
    selector_options:
        Algorithm-specific constructor options forwarded to every load.
    """

    def __init__(
        self,
        store: "ArtifactStore | str | Path",
        capacity: int = 4,
        cache_size: int = 256,
        default_algorithm: Optional[str] = None,
        selector_options: Optional[dict] = None,
    ):
        if not isinstance(store, ArtifactStore):
            store = ArtifactStore(store)
        self.store = store
        self.cache_size = cache_size
        self.default_algorithm = default_algorithm
        self._selector_options = selector_options
        self._engines = LRUCache(maxsize=capacity)
        # dataset -> persisted algorithm, so steady-state routing of
        # algorithm-less requests doesn't re-read the store catalog per
        # request.  Dropped on evict(), like the engines themselves: a
        # version re-saved under a different algorithm is picked up after
        # an evict, consistent with resident engines not seeing new
        # versions until then.
        self._persisted_algorithms: dict[str, str] = {}
        self._served = 0
        self._loads = 0
        self._evictions = 0

    # -- routing ------------------------------------------------------------
    def _routing_key(self, request: SelectionRequest) -> tuple[str, str]:
        dataset = request.dataset
        if dataset is None:
            raise WorkspaceError(
                "requests routed through a Workspace must name a dataset "
                "(SelectionRequest(dataset=...)); a bare Engine serves "
                "dataset-less requests"
            )
        algorithm = request.algorithm or self.default_algorithm
        if algorithm is None:
            algorithm = self._persisted_algorithms.get(dataset)
            if algorithm is None:
                algorithm = self.store.describe(dataset).algorithm
                self._persisted_algorithms[dataset] = algorithm
        try:
            algorithm = resolve_name(algorithm)
        except ValueError:
            pass  # unregistered label: keyed (and rejected) as-is downstream
        return dataset, algorithm

    def engine_for(self, dataset: str, algorithm: Optional[str] = None) -> Engine:
        """The (lazily loaded) engine serving ``dataset`` with ``algorithm``.

        Faulting a new engine in may evict the least recently served one;
        engines already handed out stay valid, the workspace just forgets
        them.
        """
        key = self._routing_key(
            SelectionRequest(dataset=dataset, algorithm=algorithm)
        )
        engine = self._engines.get(key)
        if engine is None:
            engine = self.store.open(
                key[0],
                algorithm=key[1],
                cache_size=self.cache_size,
                selector_options=self._selector_options,
            )
            self._loads += 1
            self._evictions += len(self._engines.put(key, engine))
        return engine

    # -- serving ------------------------------------------------------------
    def select(
        self,
        request: Optional[SelectionRequest] = None,
        **kwargs,
    ) -> SelectionResponse:
        """Serve one request, routing by its ``dataset``/``algorithm``."""
        if request is None:
            request = SelectionRequest(**kwargs)
        elif kwargs:
            raise TypeError(
                "pass either a SelectionRequest or keyword fields, not both"
            )
        dataset, algorithm = self._routing_key(request)
        engine = self.engine_for(dataset, algorithm)
        response = engine.select(request)
        self._served += 1
        return response

    def select_many(
        self, requests: Sequence[SelectionRequest]
    ) -> list[SelectionResponse]:
        """Serve a batch of requests, grouped by engine.

        Requests are grouped by their ``(dataset, algorithm)`` routing key
        (first-appearance order), each group's engine is resolved once, and
        that engine's selection LRU serves the whole group — so a batch
        touching more datasets than ``capacity`` still loads each engine at
        most once.  Responses are returned in request order and are the
        same objects per-engine ``Engine.select`` calls would produce.
        """
        groups: dict[tuple[str, str], list[int]] = {}
        keys = []
        for index, request in enumerate(requests):
            key = self._routing_key(request)
            keys.append(key)
            groups.setdefault(key, []).append(index)
        responses: list[Optional[SelectionResponse]] = [None] * len(keys)
        for key, indices in groups.items():
            engine = self.engine_for(*key)
            for index in indices:
                responses[index] = engine.select(requests[index])
                self._served += 1
        return responses

    # -- introspection ------------------------------------------------------
    @property
    def resident(self) -> list[tuple[str, str]]:
        """Routing keys of the loaded engines, least recently served first."""
        return self._engines.keys()

    @property
    def stats(self) -> WorkspaceStats:
        return WorkspaceStats(
            served=self._served,
            engine_loads=self._loads,
            engine_evictions=self._evictions,
            capacity=self._engines.maxsize,
            resident=tuple(self.resident),
        )

    def evict(self, dataset: Optional[str] = None) -> None:
        """Drop loaded engines (all of them, or one dataset's)."""
        if dataset is None:
            self._engines.clear()
            self._persisted_algorithms.clear()
            return
        self._persisted_algorithms.pop(dataset, None)
        for key in self._engines.keys():
            if key[0] == dataset:
                self._engines.pop(key)

    def __repr__(self) -> str:
        return (f"Workspace(store={str(self.store.root)!r}, "
                f"capacity={self._engines.maxsize}, "
                f"resident={self.resident})")
