"""The serving stack: protocol → registry → engine → store → workspace.

Public surface::

    from repro.api import (
        Workspace, ArtifactStore, Engine,               # serving front door
        SelectionRequest, SelectionResponse, Selector,
        make_selector, register_selector, selector_names,
        ArtifactError, StoreError, UnknownEntryError, StaleFingerprintError,
        WorkspaceError, WireFormatError,
        load_artifact, save_artifact,
        LRUCache, CacheStats, query_fingerprint,
    )

Layered bottom-up:

* :class:`Selector` — the structural protocol every algorithm satisfies
  (``fit``/``prepare`` once, ``select`` per display);
* :func:`make_selector` / :func:`register_selector` — the string-keyed
  registry covering SubTab and all baselines, open to new backends;
* :class:`SelectionRequest` / :class:`SelectionResponse` — typed
  request/response objects with centralized validation, ``dataset``/
  ``algorithm`` routing keys, and a lossless JSON wire format
  (``to_json``/``from_json``) for crossing process boundaries;
* :class:`Engine` — the per-dataset serving kernel: LRU-cached selection
  over any registered selector, plus ``save``/``load`` of the fitted state
  so restarts skip preprocessing;
* :class:`ArtifactStore` — a directory of named, versioned, fingerprint-
  checked artifacts (one per dataset × refresh);
* :class:`Workspace` — the multi-dataset front door: routes requests (and
  batches, via ``select_many``) to lazily loaded engines behind a
  capacity-bounded eviction policy.

For serving topologies above this stack — process pools, socket
transport, consistent-hash clusters — see the
:class:`repro.serve.ExecutionBackend` protocol and its implementations
(:mod:`repro.serve`).
"""

from repro.api.artifacts import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    ArtifactError,
    LoadedArtifact,
    load_artifact,
    save_artifact,
)
from repro.api.cache import (
    FULL_TABLE_FINGERPRINT,
    CacheStats,
    LRUCache,
    query_fingerprint,
)
from repro.api.engine import Engine
from repro.api.protocol import Selector
from repro.api.registry import (
    SelectorSpec,
    make_selector,
    register_selector,
    resolve_name,
    selector_aliases,
    selector_names,
    selector_spec,
)
from repro.api.request import SelectionRequest, SelectionResponse
from repro.api.store import (
    ArtifactStore,
    StaleFingerprintError,
    StoreError,
    StoreRecord,
    UnknownEntryError,
)
from repro.api.wire import WIRE_VERSION, WireFormatError
from repro.api.workspace import Workspace, WorkspaceError, WorkspaceStats

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "ArtifactError",
    "ArtifactStore",
    "CacheStats",
    "Engine",
    "FULL_TABLE_FINGERPRINT",
    "LRUCache",
    "LoadedArtifact",
    "SelectionRequest",
    "SelectionResponse",
    "Selector",
    "SelectorSpec",
    "StaleFingerprintError",
    "StoreError",
    "StoreRecord",
    "UnknownEntryError",
    "WIRE_VERSION",
    "WireFormatError",
    "Workspace",
    "WorkspaceError",
    "WorkspaceStats",
    "load_artifact",
    "make_selector",
    "query_fingerprint",
    "register_selector",
    "resolve_name",
    "save_artifact",
    "selector_aliases",
    "selector_names",
    "selector_spec",
]
