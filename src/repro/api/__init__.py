"""The unified selector API: protocol → registry → engine.

Public surface::

    from repro.api import (
        Engine, SelectionRequest, SelectionResponse, Selector,
        make_selector, register_selector, selector_names,
        ArtifactError, load_artifact, save_artifact,
        LRUCache, CacheStats, query_fingerprint,
    )

* :class:`Selector` — the structural protocol every algorithm satisfies
  (``fit``/``prepare`` once, ``select`` per display);
* :func:`make_selector` / :func:`register_selector` — the string-keyed
  registry covering SubTab and all baselines, open to new backends;
* :class:`SelectionRequest` / :class:`SelectionResponse` — typed
  request/response objects with centralized validation;
* :class:`Engine` — the serving facade: LRU-cached selection over any
  registered selector, plus ``save``/``load`` of the fitted state so
  restarts skip preprocessing.
"""

from repro.api.artifacts import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    ArtifactError,
    LoadedArtifact,
    load_artifact,
    save_artifact,
)
from repro.api.cache import (
    FULL_TABLE_FINGERPRINT,
    CacheStats,
    LRUCache,
    query_fingerprint,
)
from repro.api.engine import Engine
from repro.api.protocol import Selector
from repro.api.registry import (
    SelectorSpec,
    make_selector,
    register_selector,
    resolve_name,
    selector_names,
    selector_spec,
)
from repro.api.request import SelectionRequest, SelectionResponse

__all__ = [
    "ARTIFACT_FORMAT",
    "ARTIFACT_VERSION",
    "ArtifactError",
    "CacheStats",
    "Engine",
    "FULL_TABLE_FINGERPRINT",
    "LRUCache",
    "LoadedArtifact",
    "SelectionRequest",
    "SelectionResponse",
    "Selector",
    "SelectorSpec",
    "load_artifact",
    "make_selector",
    "query_fingerprint",
    "register_selector",
    "resolve_name",
    "save_artifact",
    "selector_names",
    "selector_spec",
]
