"""The Engine: one serving facade over every registered selector.

``Engine`` owns the paper's phase split end to end (Alg. 2, Fig. 9):

* :meth:`Engine.fit` runs preprocessing once — normalize, bin (with the
  config's knobs), and the algorithm's own preparation (embedding training
  for subtab/embdi, rule mining for greedy, ...) — recording the timing
  split in ``timings_``;
* :meth:`Engine.select` serves one display per call from a typed
  :class:`~repro.api.request.SelectionRequest`, memoizing finished
  selections in an LRU so session replay and back-navigation are O(1) for
  *any* algorithm (cached responses are the same objects the cold path
  produced — bit-identical by construction);
* :meth:`Engine.save` / :meth:`Engine.load` persist the fitted state
  (normalized frame, binned table + vocabulary, embedding vectors) so a
  serving restart skips the heavy preprocessing — a loaded engine reports
  0.0 for normalization, binning, and embedding training; only the
  selector's cheap local preparation runs.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from repro.api.artifacts import load_artifact, save_artifact
from repro.api.cache import CacheStats, LRUCache, query_fingerprint
from repro.api.registry import make_selector, resolve_name
from repro.api.request import SelectionRequest, SelectionResponse
from repro.baselines.base import BaseSelector
from repro.binning.normalize import normalize_table
from repro.binning.pipeline import BinnedTable, TableBinner
from repro.core.config import SubTabConfig
from repro.core.result import SubTable
from repro.frame.frame import DataFrame
from repro.utils.timer import timed
from repro.utils.validation import validate_selection_args

_PREPROCESS_KEYS = (
    "preprocess_normalize",
    "preprocess_binning",
    "preprocess_prepare",
    "preprocess_total",
)


class Engine:
    """Fit-once / select-per-display facade over a registered selector.

    >>> from repro.frame import DataFrame
    >>> frame = DataFrame({"a": [1.0, 2.0, 30.0, 31.0] * 10,
    ...                    "b": ["x", "x", "y", "y"] * 10,
    ...                    "c": [0.1, 0.2, 9.0, 9.1] * 10})
    >>> engine = Engine("subtab", SubTabConfig(k=2, l=2, seed=0)).fit(frame)
    >>> engine.select().shape
    (2, 2)

    Parameters
    ----------
    algorithm:
        Registry name of the selection algorithm (``"subtab"``, ``"ran"``,
        ``"nc"``, ``"greedy"``, ``"semigreedy"``, ``"mab"``, ``"embdi"``,
        or anything registered via :func:`repro.api.register_selector`).
    config:
        Shared pipeline configuration; supplies default k/l, binning knobs,
        the seed, and (for subtab) the full Algorithm-2 parameters.
    selector_options:
        Algorithm-specific constructor options (e.g. ``time_budget`` for
        RAN).  Not persisted by :meth:`save`; pass them again to
        :meth:`load`.
    selector:
        A pre-built selector to serve instead of constructing one from the
        registry (it may already be fitted, in which case the engine adopts
        its fitted state).
    cache_size:
        Capacity of the selection LRU.
    dataset:
        Optional label of the dataset this engine serves (the
        :class:`~repro.api.Workspace` sets it to the store name).  When set,
        requests naming a *different* dataset are rejected instead of
        silently served from the wrong table.
    """

    def __init__(
        self,
        algorithm: str = "subtab",
        config: Optional[SubTabConfig] = None,
        selector_options: Optional[dict] = None,
        selector: Optional[BaseSelector] = None,
        cache_size: int = 256,
        dataset: Optional[str] = None,
    ):
        self.dataset = dataset
        self.config = config or SubTabConfig()
        self._selector_options = dict(selector_options or {})
        if selector is not None:
            # A pre-built (possibly unregistered) selector: trust the caller's
            # algorithm label instead of resolving it against the registry.
            self.algorithm = algorithm
            self._selector = selector
        else:
            self.algorithm = resolve_name(algorithm)
            self._selector = make_selector(
                self.algorithm, self.config, **self._selector_options
            )
        self._cache = LRUCache(cache_size)
        self.timings_: dict[str, float] = {}
        if self._selector.is_fitted:
            for key in _PREPROCESS_KEYS:
                self.timings_.setdefault(key, 0.0)

    # -- lifecycle ---------------------------------------------------------------
    def fit(self, frame: DataFrame, binned: Optional[BinnedTable] = None) -> "Engine":
        """Preprocess ``frame`` once (normalize, bin, prepare the selector).

        A pre-computed ``binned`` table may be supplied (experiments share
        one binning across algorithms); normalization and binning are then
        skipped.
        """
        with timed(self.timings_, "preprocess_total"):
            if binned is None:
                with timed(self.timings_, "preprocess_normalize"):
                    normalized = normalize_table(frame)
                with timed(self.timings_, "preprocess_binning"):
                    binned = TableBinner.from_config(self.config).bin_table(
                        normalized
                    )
            else:
                self.timings_["preprocess_normalize"] = 0.0
                self.timings_["preprocess_binning"] = 0.0
            with timed(self.timings_, "preprocess_prepare"):
                self._selector.prepare(binned.frame, binned=binned)
        self._cache.clear()
        return self

    @property
    def selector(self) -> BaseSelector:
        """The underlying selector (shared — do not re-prepare it directly)."""
        return self._selector

    @property
    def is_fitted(self) -> bool:
        return self._selector.is_fitted

    @property
    def binned(self) -> BinnedTable:
        return self._selector.binned

    @property
    def frame(self) -> DataFrame:
        return self._selector.frame

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("call fit(frame) before serving selections")

    def _check_routing(self, request: SelectionRequest) -> None:
        """Reject requests routed to the wrong engine.

        The routing fields are advisory on a bare engine — a request with
        ``dataset=None``/``algorithm=None`` is served unconditionally — but
        when a request names a dataset or algorithm that disagrees with
        this engine's, serving it would silently answer from the wrong
        table or method.
        """
        if request.algorithm is not None:
            requested = request.algorithm
            try:
                requested = resolve_name(requested)
            except ValueError:
                pass  # unregistered label (pre-built selector): compare raw
            if requested != self.algorithm:
                raise ValueError(
                    f"request asks for algorithm {request.algorithm!r} but "
                    f"this engine serves {self.algorithm!r}; route it "
                    "through a Workspace instead"
                )
        if (request.dataset is not None and self.dataset is not None
                and request.dataset != self.dataset):
            raise ValueError(
                f"request asks for dataset {request.dataset!r} but this "
                f"engine serves {self.dataset!r}; route it through a "
                "Workspace instead"
            )

    # -- cache -------------------------------------------------------------------
    @property
    def cache_stats(self) -> CacheStats:
        return self._cache.stats

    def clear_cache(self) -> None:
        self._cache.clear()

    # -- serving -----------------------------------------------------------------
    def select(
        self,
        request: Optional[SelectionRequest] = None,
        **kwargs,
    ) -> SelectionResponse:
        """Serve one display.

        Accepts either a prepared :class:`SelectionRequest` or its keyword
        fields directly (``engine.select(k=5, l=4, targets=("Y",))``).
        Repeated cache-eligible requests are served from the LRU without
        re-running the selection pipeline; responses then share the cached
        :class:`~repro.core.SubTable` object — treat it as immutable.
        Fairness-constrained requests are never cached.
        """
        if request is None:
            request = SelectionRequest(**kwargs)
        elif kwargs:
            raise TypeError("pass either a SelectionRequest or keyword fields, not both")
        self._require_fitted()
        self._check_routing(request)
        k, l = request.resolve(self.config.k, self.config.l)
        targets = validate_selection_args(k, l, request.targets)
        modes = request.mode_overrides()

        cacheable = request.use_cache and request.fairness is None
        key = None
        if cacheable:
            key = (
                query_fingerprint(request.query),
                k,
                l,
                tuple(targets),
                tuple(sorted(modes.items())),
            )
            cached = self._cache.get(key)
            if cached is not None:
                return self._respond(cached, request, k, l, cache_hit=True,
                                     select_seconds=0.0)

        start = time.perf_counter()
        subtable = self._selector.select(
            k,
            l,
            query=request.query,
            targets=targets,
            fairness=request.fairness,
            modes=modes or None,
        )
        elapsed = time.perf_counter() - start
        self.timings_["select"] = elapsed
        if cacheable:
            self._cache.put(key, subtable)
        return self._respond(subtable, request, k, l, cache_hit=False,
                             select_seconds=elapsed)

    def select_subtable(self, *args, **kwargs) -> SubTable:
        """Like :meth:`select` but returning only the sub-table."""
        return self.select(*args, **kwargs).subtable

    def _respond(
        self,
        subtable: SubTable,
        request: SelectionRequest,
        k: int,
        l: int,
        cache_hit: bool,
        select_seconds: float,
    ) -> SelectionResponse:
        timings = {key: self.timings_.get(key, 0.0) for key in _PREPROCESS_KEYS}
        timings["select_seconds"] = select_seconds
        return SelectionResponse(
            subtable=subtable,
            request=request,
            algorithm=self.algorithm,
            k=k,
            l=l,
            cache_hit=cache_hit,
            select_seconds=select_seconds,
            timings=timings,
        )

    # -- persistence -------------------------------------------------------------
    def save(self, path) -> "Engine":
        """Persist the fitted state to directory ``path`` (see
        :mod:`repro.api.artifacts` for the format).  Returns ``self``."""
        self._require_fitted()
        model = getattr(self._selector, "embedding_model", None)
        save_artifact(
            path,
            algorithm=self.algorithm,
            config=self.config,
            binned=self.binned,
            model=model,
        )
        return self

    @classmethod
    def load(
        cls,
        path,
        selector_options: Optional[dict] = None,
        cache_size: int = 256,
        algorithm: Optional[str] = None,
        dataset: Optional[str] = None,
    ) -> "Engine":
        """Rebuild a fitted engine from :meth:`save`'s artifact.

        The heavy preprocessing is skipped entirely: the normalized frame,
        binned table, and (when present) the embedding are restored from
        disk, so ``timings_`` reports 0.0 for normalization, binning, and
        embedding training; only the selector's local preparation (e.g.
        restoring caches) runs and is reported as ``preprocess_prepare``.
        The artifact-reading cost itself is reported as ``artifact_load``.
        ``algorithm`` may override the persisted algorithm name — the
        shared preprocessed state (binning, vocabulary) is
        algorithm-independent, though the embedding only transfers between
        embedding-based selectors.
        """
        start = time.perf_counter()
        artifact = load_artifact(path)
        engine = cls(
            algorithm=algorithm or artifact.algorithm,
            config=artifact.config,
            selector_options=selector_options,
            cache_size=cache_size,
            dataset=dataset,
        )
        engine.timings_["artifact_load"] = time.perf_counter() - start
        selector = engine._selector
        if artifact.model is not None and hasattr(selector, "preload_embedding"):
            selector.preload_embedding(artifact.model)
        engine.timings_["preprocess_normalize"] = 0.0
        engine.timings_["preprocess_binning"] = 0.0
        with timed(engine.timings_, "preprocess_prepare"):
            selector.prepare(artifact.binned.frame, binned=artifact.binned)
        engine.timings_["preprocess_total"] = engine.timings_["preprocess_prepare"]
        return engine
