"""Typed request/response objects for the Engine API.

A :class:`SelectionRequest` captures everything a display needs — sub-table
dimensions, the exploratory query, target columns, fairness constraint, and
per-request mode overrides — in one validated value object, so every entry
point (Engine, service, CLI, benchmarks) speaks the same vocabulary.  A
:class:`SelectionResponse` pairs the selected
:class:`~repro.core.SubTable` with timing and cache metadata, making the
paper's preprocess/select split (Fig. 9) observable per request.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.result import SubTable
from repro.utils.validation import validate_selection_args

#: Mode-override keys a request may carry; selectors declare the subset they
#: support via ``supported_modes`` and reject the rest at select time.
MODE_KEYS = ("row_mode", "column_mode", "centroid_mode")


@dataclass(frozen=True)
class SelectionRequest:
    """One display's worth of selection arguments.

    Attributes
    ----------
    k, l:
        Requested sub-table dimensions; ``None`` defers to the engine
        config's defaults.
    query:
        Optional selection-projection query (any object exposing
        ``row_indices(frame)`` and ``output_columns(frame)``); ``None``
        selects from the full table.
    targets:
        Target columns U*, always included among the selected columns.
    fairness:
        Optional :class:`~repro.core.fairness.GroupRepresentation`
        constraint (embedding-based selectors only; never cached).
    row_mode, column_mode, centroid_mode:
        Per-request overrides of the configured selection modes; ``None``
        keeps the configured value.
    use_cache:
        Whether the engine may serve/store this request from its LRU.
    """

    k: Optional[int] = None
    l: Optional[int] = None
    query: Any = None
    targets: tuple = ()
    fairness: Any = None
    row_mode: Optional[str] = None
    column_mode: Optional[str] = None
    centroid_mode: Optional[str] = None
    use_cache: bool = True

    def __post_init__(self):
        object.__setattr__(self, "targets", tuple(self.targets))
        # Validate what is knowable without the engine's config; requests
        # deferring k or l to the config are validated at serve time, after
        # the defaults are resolved (same central validator either way).
        if self.k is not None and self.l is not None:
            validate_selection_args(self.k, self.l, self.targets)

    def resolve(self, default_k: int, default_l: int) -> tuple[int, int]:
        """The effective (k, l) given the engine config's defaults."""
        return (
            default_k if self.k is None else self.k,
            default_l if self.l is None else self.l,
        )

    def mode_overrides(self) -> dict[str, str]:
        """The non-``None`` mode overrides as a plain dict."""
        overrides = {}
        for key in MODE_KEYS:
            value = getattr(self, key)
            if value is not None:
                overrides[key] = value
        return overrides

    def replace(self, **changes) -> "SelectionRequest":
        """A copy of this request with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)


@dataclass
class SelectionResponse:
    """A served selection plus its provenance.

    Attributes
    ----------
    subtable:
        The selected k x l sub-table.  Responses may share this object with
        the engine's LRU — treat it as immutable.
    request:
        The request that produced it.
    algorithm:
        Canonical registry name of the algorithm that served it.
    k, l:
        The effective dimensions after applying config defaults.
    cache_hit:
        Whether the subtable came from the engine's LRU.
    select_seconds:
        Wall-clock spent in this call (≈0 on cache hits).
    timings:
        Engine-level timing metadata: the preprocess split recorded at
        fit/load time plus this request's ``select_seconds`` — the paper's
        Figure-9 decomposition, per request.
    """

    subtable: SubTable
    request: SelectionRequest
    algorithm: str
    k: int
    l: int
    cache_hit: bool
    select_seconds: float
    timings: dict = field(default_factory=dict)

    @property
    def shape(self) -> tuple[int, int]:
        return self.subtable.shape

    def __str__(self) -> str:
        return str(self.subtable)
