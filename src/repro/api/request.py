"""Typed request/response objects for the serving stack.

A :class:`SelectionRequest` captures everything a display needs — sub-table
dimensions, the exploratory query, target columns, fairness constraint,
per-request mode overrides, and (for the multi-dataset stack) the
``dataset``/``algorithm`` routing keys — in one validated value object, so
every entry point (Engine, Workspace, EnginePool, CLI, benchmarks) speaks
the same vocabulary.  A :class:`SelectionResponse` pairs the selected
:class:`~repro.core.SubTable` with timing and cache metadata, making the
paper's preprocess/select split (Fig. 9) observable per request.

Both objects cross process boundaries losslessly: ``to_json``/``from_json``
serialize every field — queries and fairness constraints included — via the
codecs in :mod:`repro.api.wire`, which is how :class:`~repro.serve.pool
.EnginePool` workers receive requests and return responses.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.api.wire import (
    WIRE_VERSION,
    WireFormatError,
    decode_fairness,
    decode_query,
    decode_subtable,
    encode_fairness,
    encode_query,
    encode_subtable,
)
from repro.core.result import SubTable
from repro.utils.validation import validate_selection_args

REQUEST_WIRE_FORMAT = "repro-selection-request"
RESPONSE_WIRE_FORMAT = "repro-selection-response"


def _check_wire_envelope(payload: Any, expected_format: str) -> dict:
    if not isinstance(payload, dict):
        raise WireFormatError(
            f"expected a JSON object for {expected_format}, got "
            f"{type(payload).__name__}"
        )
    if payload.get("format") != expected_format:
        raise WireFormatError(
            f"payload format {payload.get('format')!r} is not "
            f"{expected_format!r}"
        )
    if payload.get("wire_version") != WIRE_VERSION:
        raise WireFormatError(
            f"wire version {payload.get('wire_version')!r} is not supported "
            f"by this build (expected {WIRE_VERSION})"
        )
    return payload

#: Mode-override keys a request may carry; selectors declare the subset they
#: support via ``supported_modes`` and reject the rest at select time.
MODE_KEYS = ("row_mode", "column_mode", "centroid_mode")


@dataclass(frozen=True)
class SelectionRequest:
    """One display's worth of selection arguments.

    Attributes
    ----------
    k, l:
        Requested sub-table dimensions; ``None`` defers to the engine
        config's defaults.
    query:
        Optional selection-projection query (any object exposing
        ``row_indices(frame)`` and ``output_columns(frame)``); ``None``
        selects from the full table.
    targets:
        Target columns U*, always included among the selected columns.
    fairness:
        Optional :class:`~repro.core.fairness.GroupRepresentation`
        constraint (embedding-based selectors only; never cached).
    row_mode, column_mode, centroid_mode:
        Per-request overrides of the configured selection modes; ``None``
        keeps the configured value.
    use_cache:
        Whether the engine may serve/store this request from its LRU.
    dataset:
        Routing key for the multi-dataset stack: the store name of the
        artifact this request should be served from.  A
        :class:`~repro.api.Workspace` requires it; a bare
        :class:`~repro.api.Engine` only checks it against its own dataset
        label (when both are set) so mis-routed requests fail loudly.
    algorithm:
        Optional routing key naming the selection algorithm; ``None`` uses
        the serving engine's (for a Workspace: the artifact's persisted)
        algorithm.
    """

    k: Optional[int] = None
    l: Optional[int] = None
    query: Any = None
    targets: tuple = ()
    fairness: Any = None
    row_mode: Optional[str] = None
    column_mode: Optional[str] = None
    centroid_mode: Optional[str] = None
    use_cache: bool = True
    dataset: Optional[str] = None
    algorithm: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "targets", tuple(self.targets))
        # Validate what is knowable without the engine's config; requests
        # deferring k or l to the config are validated at serve time, after
        # the defaults are resolved (same central validator either way).
        if self.k is not None and self.l is not None:
            validate_selection_args(self.k, self.l, self.targets)

    def resolve(self, default_k: int, default_l: int) -> tuple[int, int]:
        """The effective (k, l) given the engine config's defaults."""
        return (
            default_k if self.k is None else self.k,
            default_l if self.l is None else self.l,
        )

    def mode_overrides(self) -> dict[str, str]:
        """The non-``None`` mode overrides as a plain dict."""
        overrides = {}
        for key in MODE_KEYS:
            value = getattr(self, key)
            if value is not None:
                overrides[key] = value
        return overrides

    def replace(self, **changes) -> "SelectionRequest":
        """A copy of this request with ``changes`` applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    # -- wire format ---------------------------------------------------------
    def to_wire(self) -> dict:
        """JSON-serializable payload carrying every field of this request."""
        return {
            "format": REQUEST_WIRE_FORMAT,
            "wire_version": WIRE_VERSION,
            "k": self.k,
            "l": self.l,
            "query": encode_query(self.query),
            "targets": list(self.targets),
            "fairness": encode_fairness(self.fairness),
            "row_mode": self.row_mode,
            "column_mode": self.column_mode,
            "centroid_mode": self.centroid_mode,
            "use_cache": self.use_cache,
            "dataset": self.dataset,
            "algorithm": self.algorithm,
        }

    def to_json(self) -> str:
        """The request as JSON text (``from_json`` round-trips every field)."""
        return json.dumps(self.to_wire(), sort_keys=True)

    @classmethod
    def from_wire(cls, payload: dict) -> "SelectionRequest":
        payload = _check_wire_envelope(payload, REQUEST_WIRE_FORMAT)
        return cls(
            k=payload["k"],
            l=payload["l"],
            query=decode_query(payload["query"]),
            targets=tuple(payload["targets"]),
            fairness=decode_fairness(payload["fairness"]),
            row_mode=payload["row_mode"],
            column_mode=payload["column_mode"],
            centroid_mode=payload["centroid_mode"],
            use_cache=payload["use_cache"],
            dataset=payload["dataset"],
            algorithm=payload["algorithm"],
        )

    @classmethod
    def from_json(cls, text: "str | bytes | dict") -> "SelectionRequest":
        """Rebuild a request serialized by :meth:`to_json`.

        Accepts the JSON text (or an already-parsed payload dict) and
        re-validates the fields exactly like direct construction.
        """
        payload = text if isinstance(text, dict) else json.loads(text)
        return cls.from_wire(payload)


@dataclass
class SelectionResponse:
    """A served selection plus its provenance.

    Attributes
    ----------
    subtable:
        The selected k x l sub-table.  Responses may share this object with
        the engine's LRU — treat it as immutable.
    request:
        The request that produced it.
    algorithm:
        Canonical registry name of the algorithm that served it.
    k, l:
        The effective dimensions after applying config defaults.
    cache_hit:
        Whether the subtable came from the engine's LRU.
    select_seconds:
        Wall-clock spent in this call (≈0 on cache hits).
    timings:
        Engine-level timing metadata: the preprocess split recorded at
        fit/load time plus this request's ``select_seconds`` — the paper's
        Figure-9 decomposition, per request.
    """

    subtable: SubTable
    request: SelectionRequest
    algorithm: str
    k: int
    l: int
    cache_hit: bool
    select_seconds: float
    timings: dict = field(default_factory=dict)

    @property
    def shape(self) -> tuple[int, int]:
        return self.subtable.shape

    def __str__(self) -> str:
        return str(self.subtable)

    # -- wire format ---------------------------------------------------------
    def to_wire(self) -> dict:
        """JSON-serializable payload: the sub-table's cells and provenance,
        the request, and the serving metadata."""
        return {
            "format": RESPONSE_WIRE_FORMAT,
            "wire_version": WIRE_VERSION,
            "algorithm": self.algorithm,
            "k": self.k,
            "l": self.l,
            "cache_hit": self.cache_hit,
            "select_seconds": self.select_seconds,
            "timings": dict(self.timings),
            "request": self.request.to_wire(),
            "subtable": encode_subtable(self.subtable),
        }

    def to_json(self) -> str:
        """The response as JSON text (``from_json`` reconstructs it)."""
        return json.dumps(self.to_wire(), sort_keys=True)

    @classmethod
    def from_wire(cls, payload: dict) -> "SelectionResponse":
        payload = _check_wire_envelope(payload, RESPONSE_WIRE_FORMAT)
        return cls(
            subtable=decode_subtable(payload["subtable"]),
            request=SelectionRequest.from_wire(payload["request"]),
            algorithm=payload["algorithm"],
            k=payload["k"],
            l=payload["l"],
            cache_hit=payload["cache_hit"],
            select_seconds=payload["select_seconds"],
            timings=dict(payload["timings"]),
        )

    @classmethod
    def from_json(cls, text: "str | bytes | dict") -> "SelectionResponse":
        """Rebuild a response serialized by :meth:`to_json` — the sub-table's
        frame, provenance, and metadata are reconstructed losslessly."""
        payload = text if isinstance(text, dict) else json.loads(text)
        return cls.from_wire(payload)
