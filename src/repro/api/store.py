"""ArtifactStore: a directory of named, versioned engine artifacts.

One fitted :class:`~repro.api.Engine` persists as one artifact directory
(:mod:`repro.api.artifacts`); a serving deployment manages *many* — one or
more per dataset, re-fitted as data refreshes.  The store gives that
collection a filesystem layout and a checked catalog::

    <root>/
        <name>/
            store.json      # catalog: latest version + per-version records
            v1/             # one engine artifact (manifest.json, arrays.npz)
            v2/
        <other-name>/
            ...

``save(name, engine)`` appends a new version (existing versions are never
overwritten — readers holding an open engine stay valid); ``open(name)``
loads the latest (or a pinned) version back into a serving-ready Engine.
Every open is double-checked: the artifact's own fingerprints are verified
by :func:`~repro.api.artifacts.load_artifact`, and the manifest is checked
against the catalog record written at save time, so a manifest swapped or
regenerated behind the store's back raises :class:`StaleFingerprintError`
instead of silently serving different data.

All catalog operations are thread-safe; concurrent ``open`` of the same
name is supported and returns independent engines.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.api.artifacts import ArtifactError, MANIFEST_FILE
from repro.api.engine import Engine

STORE_FILE = "store.json"
STORE_FORMAT = "repro-artifact-store"
STORE_VERSION = 1

#: Artifact names become directory names; keep them portable and traversal-safe.
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class StoreError(RuntimeError):
    """The store catalog is missing, malformed, or inconsistent."""


class UnknownEntryError(StoreError, KeyError):
    """The requested artifact name (or version) is not in the store."""

    def __str__(self) -> str:  # KeyError would repr() the message
        return RuntimeError.__str__(self)


class StaleFingerprintError(StoreError):
    """An artifact on disk no longer matches the catalog record saved for it."""


@dataclass(frozen=True)
class StoreRecord:
    """Catalog entry of one saved artifact version."""

    name: str
    version: int
    algorithm: str
    n_rows: int
    n_cols: int
    has_embedding: bool
    vocab_fingerprint: str
    data_fingerprint: str
    created: float
    path: Path


class ArtifactStore:
    """Named, versioned engine artifacts under one root directory.

    >>> store = ArtifactStore("/tmp/subtab-store")      # doctest: +SKIP
    >>> store.save("flights", engine)                   # doctest: +SKIP
    >>> store.open("flights").select(k=5, l=5)          # doctest: +SKIP
    """

    def __init__(self, root: "str | Path") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()

    # -- catalog ------------------------------------------------------------
    @staticmethod
    def _check_name(name: str) -> str:
        if not isinstance(name, str) or not _NAME_PATTERN.match(name):
            raise StoreError(
                f"invalid artifact name {name!r}: names are directory names "
                "(letters, digits, '.', '_', '-'; not starting with '.')"
            )
        return name

    def _meta_path(self, name: str) -> Path:
        return self.root / name / STORE_FILE

    def _read_meta(self, name: str) -> Optional[dict]:
        path = self._meta_path(name)
        if not path.is_file():
            return None
        try:
            meta = json.loads(path.read_text())
        except json.JSONDecodeError as error:
            raise StoreError(
                f"store catalog {path} is not valid JSON: {error}"
            ) from None
        if meta.get("format") != STORE_FORMAT:
            raise StoreError(
                f"{path} is not an artifact-store catalog "
                f"(format {meta.get('format')!r})"
            )
        if meta.get("store_version") != STORE_VERSION:
            raise StoreError(
                f"store catalog version {meta.get('store_version')!r} is not "
                f"supported by this build (expected {STORE_VERSION})"
            )
        return meta

    def _require_meta(self, name: str) -> dict:
        self._check_name(name)
        meta = self._read_meta(name)
        if meta is None:
            known = ", ".join(self.names()) or "<empty store>"
            raise UnknownEntryError(
                f"unknown artifact {name!r}; store at {self.root} has: {known}"
            )
        return meta

    def _write_meta(self, name: str, meta: dict) -> None:
        path = self._meta_path(name)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(meta, indent=2, sort_keys=True))
        os.replace(tmp, path)  # atomic: readers never see a half-written catalog

    @staticmethod
    def _record_from(name: str, version: int, entry: dict, path: Path) -> StoreRecord:
        return StoreRecord(
            name=name,
            version=version,
            algorithm=entry["algorithm"],
            n_rows=entry["n_rows"],
            n_cols=entry["n_cols"],
            has_embedding=entry["has_embedding"],
            vocab_fingerprint=entry["vocab_fingerprint"],
            data_fingerprint=entry["data_fingerprint"],
            created=entry["created"],
            path=path,
        )

    def _resolve_version(self, name: str, meta: dict,
                         version: Optional[int]) -> tuple[int, dict]:
        versions = meta.get("versions", {})
        if version is None:
            version = meta.get("latest")
        entry = versions.get(str(version))
        if entry is None:
            known = ", ".join(sorted(versions, key=int)) or "<none>"
            raise UnknownEntryError(
                f"artifact {name!r} has no version {version!r}; "
                f"saved versions: {known}"
            )
        return int(version), entry

    # -- public API ---------------------------------------------------------
    def names(self) -> list[str]:
        """Sorted names of all stored artifacts."""
        with self._lock:
            return sorted(
                entry.name for entry in self.root.iterdir()
                if entry.is_dir() and (entry / STORE_FILE).is_file()
            )

    def __contains__(self, name: str) -> bool:
        try:
            self._check_name(name)
        except StoreError:
            return False
        return self._meta_path(name).is_file()

    def versions(self, name: str) -> list[int]:
        """Saved versions of ``name``, oldest first."""
        with self._lock:
            meta = self._require_meta(name)
            return sorted(int(v) for v in meta.get("versions", {}))

    def latest_version(self, name: str) -> int:
        with self._lock:
            meta = self._require_meta(name)
            version, _ = self._resolve_version(name, meta, None)
            return version

    def path(self, name: str, version: Optional[int] = None) -> Path:
        """Directory of one artifact version (latest when unspecified)."""
        with self._lock:
            meta = self._require_meta(name)
            version, _ = self._resolve_version(name, meta, version)
            return self.root / name / f"v{version}"

    def describe(self, name: str, version: Optional[int] = None) -> StoreRecord:
        """The catalog record of one artifact version (latest by default)."""
        with self._lock:
            meta = self._require_meta(name)
            version, entry = self._resolve_version(name, meta, version)
            return self._record_from(name, version, entry,
                                     self.root / name / f"v{version}")

    def records(self) -> list[StoreRecord]:
        """Latest-version records of every stored artifact, sorted by name."""
        return [self.describe(name) for name in self.names()]

    def save(self, name: str, engine: Engine) -> StoreRecord:
        """Persist ``engine`` as the next version of ``name``.

        The engine must be fitted (:meth:`Engine.save`'s contract); the new
        version becomes the store's latest.  Returns the catalog record.
        """
        self._check_name(name)
        with self._lock:
            meta = self._read_meta(name) or {
                "format": STORE_FORMAT,
                "store_version": STORE_VERSION,
                "name": name,
                "latest": 0,
                "versions": {},
            }
            version = int(meta["latest"]) + 1
            target = self.root / name / f"v{version}"
            engine.save(target)
            manifest = json.loads((target / MANIFEST_FILE).read_text())
            entry = {
                "algorithm": manifest["algorithm"],
                "n_rows": manifest["n_rows"],
                "n_cols": manifest["n_cols"],
                "has_embedding": manifest["has_embedding"],
                "vocab_fingerprint": manifest["vocab_fingerprint"],
                "data_fingerprint": manifest["data_fingerprint"],
                "created": time.time(),
            }
            meta["versions"][str(version)] = entry
            meta["latest"] = version
            self._write_meta(name, meta)
            return self._record_from(name, version, entry, target)

    def open(
        self,
        name: str,
        version: Optional[int] = None,
        algorithm: Optional[str] = None,
        cache_size: int = 256,
        selector_options: Optional[dict] = None,
    ) -> Engine:
        """Load one artifact version into a serving-ready :class:`Engine`.

        The engine's ``dataset`` label is set to ``name`` so mis-routed
        requests fail loudly.  ``algorithm`` overrides the persisted
        algorithm (the preprocessed state is algorithm-independent).

        Raises :class:`UnknownEntryError` for names/versions not in the
        catalog, :class:`StaleFingerprintError` when the on-disk manifest
        disagrees with the record written at save time, and
        :class:`~repro.api.ArtifactError` when the artifact itself is
        corrupted or of an incompatible version.
        """
        with self._lock:
            meta = self._require_meta(name)
            version, entry = self._resolve_version(name, meta, version)
            target = self.root / name / f"v{version}"
        # Load outside the lock: concurrent opens (same or different names)
        # only serialize on the catalog read above.
        manifest_path = target / MANIFEST_FILE
        if not manifest_path.is_file():
            raise ArtifactError(
                f"{target} is not an engine artifact (missing files)"
            )
        try:
            manifest = json.loads(manifest_path.read_text())
        except json.JSONDecodeError as error:
            raise ArtifactError(
                f"{manifest_path} is not valid JSON: {error}"
            ) from None
        for key in ("vocab_fingerprint", "data_fingerprint"):
            if manifest.get(key) != entry[key]:
                raise StaleFingerprintError(
                    f"artifact {name!r} v{version}: manifest {key} does not "
                    "match the store catalog; the artifact was modified "
                    "behind the store's back — re-save it through the store"
                )
        return Engine.load(
            target,
            selector_options=selector_options,
            cache_size=cache_size,
            algorithm=algorithm,
            dataset=name,
        )

    def delete(self, name: str, version: Optional[int] = None) -> None:
        """Remove one version of ``name`` (or the whole artifact).

        Deleting the latest version re-points ``latest`` at the newest
        remaining one; deleting the last version removes the name.
        """
        with self._lock:
            meta = self._require_meta(name)
            if version is None:
                shutil.rmtree(self.root / name)
                return
            version, _ = self._resolve_version(name, meta, version)
            shutil.rmtree(self.root / name / f"v{version}", ignore_errors=True)
            del meta["versions"][str(version)]
            if not meta["versions"]:
                shutil.rmtree(self.root / name)
                return
            meta["latest"] = max(int(v) for v in meta["versions"])
            self._write_meta(name, meta)

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r}, names={self.names()})"
