"""Typed columns backed by numpy arrays.

This module is part of the pandas substrate (the paper hooks into pandas;
pandas is not available offline, so we provide an equivalent columnar
structure).  Two kinds of columns exist:

* ``numeric`` — float64 storage, ``NaN`` marks missing values.  Integer input
  is widened to float64, mirroring pandas' nullable behaviour.
* ``categorical`` — object storage of strings, ``None`` marks missing values.
  Booleans are stored as the strings ``"True"``/``"False"``.

Columns are treated as immutable by convention: operations return new
columns rather than mutating in place.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

NUMERIC = "numeric"
CATEGORICAL = "categorical"

_MISSING_STRINGS = {"", "na", "nan", "null", "none", "n/a"}


def _is_missing_scalar(value) -> bool:
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, np.floating) and np.isnan(value):
        return True
    return False


def infer_kind(values: Iterable) -> str:
    """Infer whether ``values`` form a numeric or categorical column.

    A column is numeric when every non-missing value is a real number or a
    string that parses as one; otherwise it is categorical.
    """
    saw_value = False
    for value in values:
        if _is_missing_scalar(value):
            continue
        saw_value = True
        if isinstance(value, bool) or isinstance(value, np.bool_):
            return CATEGORICAL
        if isinstance(value, (int, float, np.integer, np.floating)):
            continue
        if isinstance(value, str):
            if value.strip().lower() in _MISSING_STRINGS:
                continue  # missing marker, not evidence of a kind
            try:
                float(value)
            except ValueError:
                return CATEGORICAL
            continue
        return CATEGORICAL
    # An all-missing column defaults to numeric (all-NaN), like pandas.
    return NUMERIC if saw_value or True else NUMERIC


class Column:
    """A named, typed column of values.

    Parameters
    ----------
    name:
        Column name.
    values:
        Any sequence; values are coerced according to ``kind``.
    kind:
        ``"numeric"`` or ``"categorical"``; inferred when omitted.
    """

    __slots__ = ("name", "kind", "_data")

    def __init__(self, name: str, values: Sequence, kind: str | None = None):
        if not isinstance(name, str) or not name:
            raise ValueError("column name must be a non-empty string")
        self.name = name
        if kind is None:
            if isinstance(values, np.ndarray) and values.dtype.kind in "fiu":
                kind = NUMERIC
            else:
                kind = infer_kind(values)
        if kind not in (NUMERIC, CATEGORICAL):
            raise ValueError(f"unknown column kind {kind!r}")
        self.kind = kind
        self._data = self._coerce(values, kind)

    @classmethod
    def _from_coerced(cls, name: str, data: np.ndarray, kind: str) -> "Column":
        """Construct from an already-canonical backing array, skipping
        :meth:`_coerce`.  Only for data that came out of another Column's
        storage (take/mask/rename) — the per-value coercion loop dominates
        view construction on the serving hot path."""
        if not isinstance(name, str) or not name:
            raise ValueError("column name must be a non-empty string")
        column = cls.__new__(cls)
        column.name = name
        column.kind = kind
        column._data = data
        return column

    @staticmethod
    def _coerce(values: Sequence, kind: str) -> np.ndarray:
        if kind == NUMERIC:
            if isinstance(values, np.ndarray) and values.dtype.kind == "f":
                return values.astype(np.float64, copy=True)
            out = np.empty(len(values), dtype=np.float64)
            for i, value in enumerate(values):
                if _is_missing_scalar(value):
                    out[i] = np.nan
                elif isinstance(value, str):
                    stripped = value.strip()
                    if stripped.lower() in _MISSING_STRINGS:
                        out[i] = np.nan
                    else:
                        out[i] = float(stripped)
                else:
                    out[i] = float(value)
            return out
        out = np.empty(len(values), dtype=object)
        for i, value in enumerate(values):
            if _is_missing_scalar(value):
                out[i] = None
            elif isinstance(value, str) and value.strip().lower() in _MISSING_STRINGS:
                out[i] = None
            elif isinstance(value, (bool, np.bool_)):
                out[i] = "True" if value else "False"
            else:
                out[i] = str(value)
        return out

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self):
        return iter(self._data)

    def __getitem__(self, index):
        return self._data[index]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        if self.name != other.name or self.kind != other.kind:
            return False
        if self.kind == NUMERIC:
            return bool(
                np.array_equal(self._data, other._data, equal_nan=True)
            )
        return bool(np.array_equal(self._data, other._data))

    def __repr__(self) -> str:
        return f"Column({self.name!r}, kind={self.kind}, n={len(self)})"

    # -- accessors ----------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        """The backing numpy array (do not mutate)."""
        return self._data

    @property
    def is_numeric(self) -> bool:
        return self.kind == NUMERIC

    @property
    def is_categorical(self) -> bool:
        return self.kind == CATEGORICAL

    def missing_mask(self) -> np.ndarray:
        """Boolean mask, ``True`` where the value is missing."""
        if self.kind == NUMERIC:
            return np.isnan(self._data)
        return np.array([value is None for value in self._data], dtype=bool)

    def n_missing(self) -> int:
        return int(self.missing_mask().sum())

    def non_missing_values(self) -> np.ndarray:
        """Values with missing entries removed."""
        return self._data[~self.missing_mask()]

    def distinct(self) -> list:
        """Distinct non-missing values, in first-appearance order."""
        seen: dict = {}
        for value, missing in zip(self._data, self.missing_mask()):
            if missing:
                continue
            if value not in seen:
                seen[value] = None
        return list(seen.keys())

    def n_distinct(self) -> int:
        return len(self.distinct())

    # -- statistics (numeric only) ------------------------------------------
    def _require_numeric(self, op: str) -> np.ndarray:
        if self.kind != NUMERIC:
            raise TypeError(f"{op} requires a numeric column; {self.name!r} is categorical")
        return self._data

    def min(self) -> float:
        data = self._require_numeric("min")
        return float(np.nanmin(data)) if not np.isnan(data).all() else float("nan")

    def max(self) -> float:
        data = self._require_numeric("max")
        return float(np.nanmax(data)) if not np.isnan(data).all() else float("nan")

    def mean(self) -> float:
        data = self._require_numeric("mean")
        return float(np.nanmean(data)) if not np.isnan(data).all() else float("nan")

    def std(self) -> float:
        data = self._require_numeric("std")
        return float(np.nanstd(data)) if not np.isnan(data).all() else float("nan")

    # -- transformations ------------------------------------------------------
    def take(self, indices) -> "Column":
        """New column containing the rows at ``indices`` (in order)."""
        indices = np.asarray(indices)
        return Column._from_coerced(self.name, self._data[indices], self.kind)

    def mask(self, keep: np.ndarray) -> "Column":
        """New column keeping rows where the boolean ``keep`` mask is True."""
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != self._data.shape:
            raise ValueError("mask length must equal column length")
        return Column._from_coerced(self.name, self._data[keep], self.kind)

    def rename(self, name: str) -> "Column":
        return Column._from_coerced(name, self._data.copy(), self.kind)

    def value_counts(self) -> dict:
        """Counts of non-missing values, most frequent first."""
        counts: dict = {}
        for value, missing in zip(self._data, self.missing_mask()):
            if missing:
                continue
            counts[value] = counts.get(value, 0) + 1
        return dict(sorted(counts.items(), key=lambda item: (-item[1], str(item[0]))))
