"""CSV input/output for :class:`repro.frame.DataFrame`.

Type inference follows :func:`repro.frame.column.infer_kind`: a column whose
non-missing values all parse as numbers becomes numeric, otherwise
categorical.  Common missing markers (empty string, ``NA``, ``NaN`` ...)
become missing values.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path

from repro.frame.column import Column
from repro.frame.frame import DataFrame


def read_csv(path: "str | Path") -> DataFrame:
    """Load a CSV file with a header row into a DataFrame."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path} is empty; expected a header row") from None
        raw_columns: list[list[str]] = [[] for _ in header]
        for line_number, record in enumerate(reader, start=2):
            if len(record) != len(header):
                raise ValueError(
                    f"{path}:{line_number}: expected {len(header)} fields, got {len(record)}"
                )
            for cell, bucket in zip(record, raw_columns):
                bucket.append(cell)
    columns = [Column(name, values) for name, values in zip(header, raw_columns)]
    return DataFrame(columns)


def _serialize(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        if math.isnan(value):
            return ""
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return repr(float(value))  # float() strips numpy scalar wrappers
    return str(value)


def to_csv(frame: DataFrame, path: "str | Path") -> None:
    """Write ``frame`` to ``path`` as CSV (missing values become empty cells)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(frame.columns)
        for row in frame.iter_rows():
            writer.writerow([_serialize(row[name]) for name in frame.columns])
