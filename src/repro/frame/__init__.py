"""Columnar DataFrame substrate (stand-in for pandas).

Public surface::

    from repro.frame import DataFrame, Column, read_csv, to_csv

The frame supports the selection-projection-group-sort algebra used during
exploratory data analysis, plus truncated pandas-style display — the
baseline view SubTab improves upon.
"""

from repro.frame.column import CATEGORICAL, NUMERIC, Column, infer_kind
from repro.frame.display import render_full, render_grid, render_truncated
from repro.frame.frame import DataFrame, GroupBy
from repro.frame.io import read_csv, to_csv

__all__ = [
    "CATEGORICAL",
    "NUMERIC",
    "Column",
    "DataFrame",
    "GroupBy",
    "infer_kind",
    "read_csv",
    "render_full",
    "render_grid",
    "render_truncated",
    "to_csv",
]
