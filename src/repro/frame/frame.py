"""A small columnar DataFrame: the relational substrate for SubTab.

Supports the operations the paper's EDA setting needs: row selection,
column projection, sorting, grouping with aggregation, sampling, and a
pandas-like truncated display (which motivates the whole paper — the default
``display()`` shows an arbitrary corner of the table).
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.frame.column import CATEGORICAL, NUMERIC, Column
from repro.utils.rng import ensure_rng


class DataFrame:
    """An ordered collection of equally-long :class:`Column` objects."""

    def __init__(self, data: "Mapping[str, Sequence] | Sequence[Column]" = ()):
        self._columns: dict[str, Column] = {}
        if isinstance(data, Mapping):
            items: Iterable = data.items()
            for name, values in items:
                column = values if isinstance(values, Column) else Column(name, values)
                self._add_column(column.rename(name) if column.name != name else column)
        else:
            for column in data:
                if not isinstance(column, Column):
                    raise TypeError("sequence form requires Column instances")
                self._add_column(column)

    def _add_column(self, column: Column) -> None:
        if column.name in self._columns:
            raise ValueError(f"duplicate column name {column.name!r}")
        if self._columns:
            expected = self.n_rows
            if len(column) != expected:
                raise ValueError(
                    f"column {column.name!r} has {len(column)} rows, expected {expected}"
                )
        self._columns[column.name] = column

    # -- shape & access ------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        return list(self._columns.keys())

    @property
    def n_rows(self) -> int:
        if not self._columns:
            return 0
        return len(next(iter(self._columns.values())))

    @property
    def n_cols(self) -> int:
        return len(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.n_rows, self.n_cols)

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(f"no column named {name!r}; have {self.columns}") from None

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __len__(self) -> int:
        return self.n_rows

    def __eq__(self, other) -> bool:
        if not isinstance(other, DataFrame):
            return NotImplemented
        if self.columns != other.columns:
            return False
        return all(self._columns[name] == other._columns[name] for name in self.columns)

    def row(self, index: int) -> dict:
        """The row at ``index`` as a ``{column: value}`` dict."""
        if not (-self.n_rows <= index < self.n_rows):
            raise IndexError(f"row index {index} out of range for {self.n_rows} rows")
        return {name: column[index] for name, column in self._columns.items()}

    def iter_rows(self):
        """Yield rows as dicts (used by small-table consumers only)."""
        for i in range(self.n_rows):
            yield self.row(i)

    def to_dict(self) -> dict[str, list]:
        """Plain-python representation, mostly for tests."""
        return {name: list(column.values) for name, column in self._columns.items()}

    # -- relational operations -------------------------------------------------
    def project(self, names: Sequence[str]) -> "DataFrame":
        """Projection: keep only ``names``, in the given order."""
        missing = [name for name in names if name not in self._columns]
        if missing:
            raise KeyError(f"unknown columns {missing}; have {self.columns}")
        return DataFrame([self._columns[name] for name in names])

    def drop(self, names: Sequence[str]) -> "DataFrame":
        """Complement of :meth:`project`."""
        names = set(names)
        return self.project([name for name in self.columns if name not in names])

    def take(self, indices) -> "DataFrame":
        """Row selection by integer positions (in order, duplicates allowed)."""
        indices = np.asarray(indices, dtype=np.int64)
        return DataFrame([column.take(indices) for column in self._columns.values()])

    def filter(self, predicate: "np.ndarray | Callable[[dict], bool]") -> "DataFrame":
        """Row selection by boolean mask or per-row predicate function."""
        if callable(predicate):
            mask = np.fromiter(
                (bool(predicate(row)) for row in self.iter_rows()),
                dtype=bool,
                count=self.n_rows,
            )
        else:
            mask = np.asarray(predicate, dtype=bool)
            if mask.shape != (self.n_rows,):
                raise ValueError("mask length must equal the number of rows")
        return DataFrame([column.mask(mask) for column in self._columns.values()])

    def sort_by(self, name: str, ascending: bool = True) -> "DataFrame":
        """Stable sort by one column; missing values sort last."""
        column = self.column(name)
        missing = column.missing_mask()
        if column.is_numeric:
            keys = column.values.copy()
            keys[missing] = np.inf if ascending else -np.inf
            order = np.argsort(keys, kind="stable")
        else:
            present = np.flatnonzero(~missing)
            absent = np.flatnonzero(missing)
            present_sorted = present[
                np.argsort(np.array([str(column[i]) for i in present]), kind="stable")
            ]
            order = np.concatenate([present_sorted, absent]) if len(absent) else present_sorted
        if not ascending:
            present_part = order[~missing[order]]
            absent_part = order[missing[order]]
            order = np.concatenate([present_part[::-1], absent_part])
        return self.take(order)

    def head(self, n: int = 5) -> "DataFrame":
        return self.take(np.arange(min(n, self.n_rows)))

    def tail(self, n: int = 5) -> "DataFrame":
        start = max(0, self.n_rows - n)
        return self.take(np.arange(start, self.n_rows))

    def sample(self, n: int, seed=None, replace: bool = False) -> "DataFrame":
        """Uniform row sample of size ``n`` (without replacement by default)."""
        rng = ensure_rng(seed)
        if not replace and n > self.n_rows:
            raise ValueError(f"cannot sample {n} rows from {self.n_rows} without replacement")
        indices = rng.choice(self.n_rows, size=n, replace=replace)
        return self.take(indices)

    def concat_rows(self, other: "DataFrame") -> "DataFrame":
        """Vertical concatenation; schemas must match exactly."""
        if self.columns != other.columns:
            raise ValueError("schemas differ; cannot concatenate")
        merged = []
        for name in self.columns:
            left, right = self._columns[name], other._columns[name]
            kind = left.kind if left.kind == right.kind else CATEGORICAL
            values = np.concatenate([np.asarray(left.values, dtype=object),
                                     np.asarray(right.values, dtype=object)])
            merged.append(Column(name, values, kind=kind))
        return DataFrame(merged)

    def with_column(self, column: Column) -> "DataFrame":
        """New frame with ``column`` appended (or replaced if the name exists)."""
        columns = [self._columns[name] for name in self.columns if name != column.name]
        columns.append(column)
        return DataFrame(columns)

    def group_by(self, names: "str | Sequence[str]") -> "GroupBy":
        """Group rows by one or more columns; see :class:`GroupBy`."""
        if isinstance(names, str):
            names = [names]
        for name in names:
            self.column(name)  # validate
        return GroupBy(self, list(names))

    # -- summaries ---------------------------------------------------------------
    def describe(self) -> dict[str, dict]:
        """Per-column summary: kind, missing count, distinct count, numeric stats."""
        summary = {}
        for name, column in self._columns.items():
            info = {
                "kind": column.kind,
                "n_missing": column.n_missing(),
                "n_distinct": column.n_distinct(),
            }
            if column.is_numeric and column.n_missing() < len(column):
                info.update(
                    min=column.min(), max=column.max(),
                    mean=column.mean(), std=column.std(),
                )
            summary[name] = info
        return summary

    def __repr__(self) -> str:
        from repro.frame.display import render_truncated

        return render_truncated(self)


class GroupBy:
    """Deferred grouping over a :class:`DataFrame`.

    Aggregations: ``count``, ``sum``, ``mean``, ``min``, ``max``, ``nunique``.
    Missing group keys form their own group (rendered as ``None``/``NaN``).
    """

    _NUMERIC_AGGS = {
        "sum": np.nansum,
        "mean": np.nanmean,
        "min": np.nanmin,
        "max": np.nanmax,
    }

    def __init__(self, frame: DataFrame, keys: list[str]):
        self._frame = frame
        self._keys = keys
        self._groups = self._build_groups()

    def _build_groups(self) -> dict[tuple, np.ndarray]:
        frame = self._frame
        key_columns = [frame.column(name) for name in self._keys]
        buckets: dict[tuple, list[int]] = {}
        for i in range(frame.n_rows):
            key = tuple(
                None if missing else column[i]
                for column, missing in (
                    (col, bool(col.missing_mask()[i])) for col in key_columns
                )
            )
            buckets.setdefault(key, []).append(i)
        return {key: np.array(rows, dtype=np.int64) for key, rows in buckets.items()}

    @property
    def n_groups(self) -> int:
        return len(self._groups)

    def groups(self) -> dict[tuple, np.ndarray]:
        """Mapping from group key tuple to row indices."""
        return dict(self._groups)

    def agg(self, spec: Mapping[str, str]) -> DataFrame:
        """Aggregate: ``spec`` maps column name -> aggregation name.

        Returns a frame with one row per group: the key columns followed by
        ``{column}_{agg}`` result columns.
        """
        frame = self._frame
        keys_sorted = sorted(self._groups.keys(), key=lambda key: tuple(str(part) for part in key))
        out: dict[str, list] = {name: [] for name in self._keys}
        result_names = [f"{column}_{agg}" for column, agg in spec.items()]
        for name in result_names:
            out[name] = []
        for key in keys_sorted:
            rows = self._groups[key]
            for name, part in zip(self._keys, key):
                out[name].append(part)
            for (column_name, agg), result_name in zip(spec.items(), result_names):
                out[result_name].append(self._aggregate(column_name, agg, rows))
        return DataFrame(out)

    def _aggregate(self, column_name: str, agg: str, rows: np.ndarray):
        column = self._frame.column(column_name)
        if agg == "count":
            return int((~column.missing_mask()[rows]).sum())
        if agg == "nunique":
            return column.take(rows).n_distinct()
        if agg in self._NUMERIC_AGGS:
            if not column.is_numeric:
                raise TypeError(f"{agg} requires numeric column, {column_name!r} is categorical")
            values = column.values[rows]
            if np.isnan(values).all():
                return float("nan")
            return float(self._NUMERIC_AGGS[agg](values))
        raise ValueError(f"unknown aggregation {agg!r}")
