"""Textual rendering of DataFrames.

``render_truncated`` mimics pandas' default ``display()``: the first and last
few rows over the first and last few columns — the uninformative view the
paper's introduction criticizes.  ``render_full`` renders a small table in
full, optionally with per-cell ANSI highlighting (used by
:mod:`repro.core.highlight` to color association rules as in the paper's
Figures 1 and 3).
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

ELLIPSIS = "..."


def _format_value(value) -> str:
    if value is None:
        return "None"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if value == int(value) and abs(value) < 1e15:
            return f"{value:.1f}"
        return f"{value:.4g}"
    return str(value)


def _column_width(header: str, cells: Sequence[str]) -> int:
    return max([len(header)] + [len(cell) for cell in cells])


def render_grid(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    decorate: "Callable[[int, int, str], str] | None" = None,
) -> str:
    """Render a grid of pre-formatted strings with aligned columns.

    ``decorate(row, col, text)`` may wrap a cell with ANSI codes; decoration
    is applied after width computation so colors do not skew alignment.
    """
    widths = [
        _column_width(header, [row[j] for row in rows])
        for j, header in enumerate(headers)
    ]
    lines = ["  ".join(header.ljust(width) for header, width in zip(headers, widths))]
    lines.append("  ".join("-" * width for width in widths))
    for i, row in enumerate(rows):
        cells = []
        for j, (cell, width) in enumerate(zip(row, widths)):
            padded = cell.ljust(width)
            if decorate is not None:
                padded = decorate(i, j, padded)
            cells.append(padded)
        lines.append("  ".join(cells))
    return "\n".join(lines)


def render_full(frame, decorate=None) -> str:
    """Render every row and column of ``frame`` (intended for sub-tables)."""
    headers = list(frame.columns)
    rows = [
        [_format_value(frame.column(name)[i]) for name in headers]
        for i in range(frame.n_rows)
    ]
    body = render_grid(headers, rows, decorate=decorate)
    return f"{body}\n[{frame.n_rows} rows x {frame.n_cols} columns]"


def render_truncated(frame, max_rows: int = 10, max_cols: int = 10) -> str:
    """Pandas-style corner display: head/tail rows, first/last columns."""
    n_rows, n_cols = frame.shape
    if n_rows == 0 or n_cols == 0:
        return f"Empty DataFrame [{n_rows} rows x {n_cols} columns]"

    if n_cols > max_cols:
        half = max_cols // 2
        col_names = frame.columns[:half] + [ELLIPSIS] + frame.columns[-half:]
    else:
        col_names = list(frame.columns)

    if n_rows > max_rows:
        half = max_rows // 2
        row_indices: list = list(range(half)) + [None] + list(
            range(n_rows - half, n_rows)
        )
    else:
        row_indices = list(range(n_rows))

    rows = []
    for index in row_indices:
        if index is None:
            rows.append([ELLIPSIS] * len(col_names))
            continue
        cells = []
        for name in col_names:
            if name == ELLIPSIS:
                cells.append(ELLIPSIS)
            else:
                cells.append(_format_value(frame.column(name)[index]))
        rows.append(cells)
    body = render_grid(col_names, rows)
    return f"{body}\n[{n_rows} rows x {n_cols} columns]"
