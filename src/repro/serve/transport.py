"""Length-prefixed JSON socket transport for the backend protocol.

This is the host-boundary leg of the serving stack: a
:class:`SocketServer` exposes any :class:`~repro.serve.backend
.ExecutionBackend` on a TCP address, and a :class:`RemoteBackend` is the
client-side backend that speaks to it — so a remote engine, pool, or even a
whole cluster plugs into every topology exactly like a local one.

Framing
-------
Each message is one *frame*: a 4-byte big-endian unsigned length followed
by that many bytes of UTF-8 JSON.  Oversized frames (>256 MiB) and
mid-frame EOFs raise :class:`~repro.serve.errors.TransportError`; a clean
EOF between frames ends the conversation.  The JSON payloads reuse
:mod:`repro.api.wire` verbatim — requests and responses cross the socket
in exactly the wire form the :class:`~repro.serve.EnginePool` workers
already exchange, so socket-served responses are bit-identical to
in-process ones.

A message may carry an ``"id"`` field; the server echoes it verbatim into
the reply.  Clients that serialize request/response per connection (the
sync :class:`RemoteBackend`) never send one and see byte-identical
replies; clients that pipeline many frames per connection
(:class:`~repro.serve.aio.AsyncRemoteBackend`) use the echo to correlate
out-of-order completions.  The frame codec (:func:`encode_frame` /
:func:`decode_payload`) and the server-side op dispatch
(:class:`BackendDispatcher`) are shared with the asyncio server in
:mod:`repro.serve.aio`, so both transports speak one protocol by
construction.

Operations (client → server)
----------------------------
=================  =====================================================
``ping``           liveness probe → ``{"ok": true}``
``stats``          the hosted backend's stats → ``{"ok": true, "stats"}``
``metrics``        dispatcher + backend telemetry → ``{"ok": true,
                   "metrics"}``
``select``         one request wire dict → ``{"ok": true, "response"}``
``select_many``    request wire dicts → ``{"ok": true, "results": [...]}``
=================  =====================================================

A message may also carry a ``"trace"`` field (``{"id": ...}``, see
:mod:`repro.obs.trace`); the server echoes it back enriched with
server-side stage timings (``server``/``backend``/``select``), and the
clients derive the stages only they can see (``client_queue``,
``transport``).  Requests without the field get byte-identical replies,
so tracing costs nothing until a client opts in.

Failures come back as ``{"ok": false, "kind": ..., "error": ...}`` where
``kind`` is ``"request"`` (fails on every replica — surfaced as
:class:`~repro.serve.errors.RemoteRequestError`), ``"backend"`` (this
server is unusable — :class:`~repro.serve.errors.RemoteServerError`, a
failover trigger), or ``"protocol"`` (malformed frame).
"""

from __future__ import annotations

import json
import multiprocessing
import signal
import socket
import socketserver
import struct
import sys
import threading
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.api.request import SelectionRequest, SelectionResponse
from repro.obs import (
    TRACE_KEY,
    MetricsRegistry,
    make_stage,
    resolve_trace_id,
    stage_seconds,
)
from repro.serve.backend import BaseBackend
from repro.serve.errors import (
    BackendError,
    RemoteRequestError,
    RemoteServerError,
    TransportError,
)

DEFAULT_HOST = "127.0.0.1"

#: Hard ceiling on one frame; a corrupt length prefix fails loudly instead
#: of attempting a multi-gigabyte read.
MAX_FRAME_BYTES = 1 << 28

_HEADER = struct.Struct(">I")

#: Size of the length prefix, for transports that read it themselves
#: (the asyncio server's ``readexactly`` loop).
FRAME_HEADER_SIZE = _HEADER.size


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def _recv_exact(sock: socket.socket, n: int, *, at_boundary: bool) -> Optional[bytes]:
    """Read exactly ``n`` bytes.  Returns ``None`` on a clean EOF before the
    first byte of a frame (``at_boundary=True``); raises
    :class:`TransportError` on EOF anywhere else."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            if at_boundary and remaining == n:
                return None
            raise TransportError(
                f"peer closed the connection mid-frame "
                f"({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def encode_frame(payload: dict) -> bytes:
    """One length-prefixed JSON frame as bytes (header + body)."""
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise TransportError(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte "
            "transport limit"
        )
    return _HEADER.pack(len(data)) + data


def frame_length(header: bytes) -> int:
    """Body length announced by a 4-byte frame header (bounds-checked)."""
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise TransportError(
            f"peer announced a {length}-byte frame, over the "
            f"{MAX_FRAME_BYTES}-byte transport limit"
        )
    return length


def decode_payload(data: bytes) -> dict:
    """Decode one frame body (raises :class:`TransportError` on garbage)."""
    try:
        return json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TransportError(f"undecodable frame: {error}") from error


def send_frame(sock: socket.socket, payload: dict) -> None:
    """Send one length-prefixed JSON frame."""
    sock.sendall(encode_frame(payload))


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """Receive one frame (``None`` on a clean EOF between frames)."""
    header = _recv_exact(sock, _HEADER.size, at_boundary=True)
    if header is None:
        return None
    length = frame_length(header)
    data = _recv_exact(sock, length, at_boundary=False)
    return decode_payload(data)


# ---------------------------------------------------------------------------
# Dispatch (shared by the sync and asyncio servers)
# ---------------------------------------------------------------------------

class BackendDispatcher:
    """Maps wire messages onto a hosted backend — the one server brain.

    Both the threaded :class:`SocketServer` and the
    :class:`~repro.serve.aio.AsyncSocketServer` hand every decoded frame
    to one of these, so the op set, the error taxonomy, and the
    request-id echo cannot drift between transports.  Backend calls are
    serialized under one lock: a hosted :class:`~repro.serve.EnginePool`'s
    drain loop is single-caller, and cross-member parallelism in a cluster
    comes from running many server *processes*, not many threads in one.
    """

    def __init__(self, backend) -> None:
        self.backend = backend
        self._lock = threading.Lock()
        #: Server-side telemetry: per-op counters plus ``trace.<stage>``
        #: timing histograms for traced requests.  Exposed by the
        #: ``metrics`` op and the CLI's ``--stats-interval`` dump.
        self.metrics = MetricsRegistry()

    def handle_message(self, message) -> dict:
        tracing = isinstance(message, dict) and TRACE_KEY in message
        stages: "Optional[list]" = [] if tracing else None
        start = time.perf_counter()
        try:
            reply = self._dispatch(message, stages)
        except Exception as error:  # never kill the connection on bad input
            reply = {"ok": False, "kind": "protocol",
                     "error": f"{type(error).__name__}: {error}"}
        if tracing and stages is not None:
            stages.append(make_stage("server", time.perf_counter() - start))
            carried = message.get(TRACE_KEY)
            trace_id = (carried.get("id")
                        if isinstance(carried, dict) else None)
            reply[TRACE_KEY] = {"id": trace_id, "stages": stages}
            for entry in stages:
                self.metrics.histogram(
                    f"trace.{entry['stage']}"
                ).observe(entry["seconds"])
        if isinstance(message, dict) and "id" in message:
            # Pipelined clients correlate out-of-order completions by the
            # echoed id; id-less clients see byte-identical replies.
            reply["id"] = message["id"]
        return reply

    def _dispatch(self, message, stages: "Optional[list]" = None) -> dict:
        if not isinstance(message, dict):
            return {"ok": False, "kind": "protocol",
                    "error": f"expected a JSON object, got "
                             f"{type(message).__name__}"}
        op = message.get("op")
        if isinstance(op, str):
            self.metrics.counter(f"ops.{op}").inc()
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            with self._lock:
                return {"ok": True, "stats": self.backend.stats()}
        if op == "metrics":
            with self._lock:
                backend_stats = self.backend.stats()
            return {"ok": True, "metrics": {
                "dispatcher": self.metrics.snapshot(),
                "backend": backend_stats.get("metrics", {}),
            }}
        if op == "select":
            try:
                # An undecodable request is a *request* failure: it would
                # fail identically on every replica, so it must not be
                # reported in a way the client maps to a failover trigger.
                request = SelectionRequest.from_wire(message["request"])
                with self._lock:
                    backend_start = time.perf_counter()
                    response = self.backend.select(request)
                    backend_seconds = time.perf_counter() - backend_start
            except BackendError as error:
                return {"ok": False, "kind": "backend",
                        "error": f"{type(error).__name__}: {error}"}
            except Exception as error:
                return {"ok": False, "kind": "request",
                        "error": f"{type(error).__name__}: {error}"}
            if stages is not None:
                # ``backend`` is the full dispatch hop (queueing through a
                # hosted pool/cluster included); ``select`` is the engine's
                # own selection wall — the gap between them is routing cost.
                stages.append(make_stage("backend", backend_seconds))
                stages.append(make_stage(
                    "select", getattr(response, "select_seconds", 0.0) or 0.0
                ))
            return {"ok": True, "response": response.to_wire()}
        if op == "select_many":
            requests = []
            decode_errors: dict[int, dict] = {}
            for position, wire in enumerate(message["requests"]):
                try:
                    requests.append(SelectionRequest.from_wire(wire))
                except Exception as error:  # that entry fails, not the batch
                    decode_errors[position] = {
                        "ok": False, "kind": "request",
                        "error": f"{type(error).__name__}: {error}",
                    }
                    requests.append(None)
            try:
                with self._lock:
                    backend_start = time.perf_counter()
                    entries = self.backend.select_many(
                        [r for r in requests if r is not None],
                        raise_on_error=False,
                    )
                    backend_seconds = time.perf_counter() - backend_start
            except BackendError as error:
                return {"ok": False, "kind": "backend",
                        "error": f"{type(error).__name__}: {error}"}
            if stages is not None:
                stages.append(make_stage("backend", backend_seconds))
            served = iter(entries)
            results = []
            for position in range(len(requests)):
                if position in decode_errors:
                    results.append(decode_errors[position])
                    continue
                entry = next(served)
                if isinstance(entry, SelectionResponse):
                    results.append({"ok": True, "response": entry.to_wire()})
                else:
                    # Preserve the taxonomy across the socket: a hosted
                    # nested backend (e.g. a cluster) reports member-level
                    # failures as BackendError entries, and the client
                    # must still see them as failover triggers.
                    kind = ("backend" if isinstance(entry, BackendError)
                            else "request")
                    results.append({
                        "ok": False, "kind": kind,
                        "error": f"{type(entry).__name__}: {entry}",
                    })
            return {"ok": True, "results": results}
        return {"ok": False, "kind": "protocol",
                "error": f"unknown op {op!r}"}


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------

class _ConnectionHandler(socketserver.BaseRequestHandler):
    def handle(self) -> None:
        while True:
            try:
                message = recv_frame(self.request)
            except TransportError:
                return
            if message is None:
                return
            reply = self.server.owner.handle_message(message)
            try:
                send_frame(self.request, reply)
            except (TransportError, OSError):
                return


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    owner: "SocketServer"


class SocketServer:
    """Serve an :class:`ExecutionBackend` over TCP.

    >>> server = SocketServer(backend, port=0).start()   # doctest: +SKIP
    >>> RemoteBackend(server.address).select(request)    # doctest: +SKIP

    ``port=0`` binds an ephemeral port; read the bound address from
    :attr:`address`.  Connections are handled in threads, but backend
    calls are serialized under one lock — a hosted :class:`EnginePool`'s
    drain loop is single-caller, and cross-member parallelism in a cluster
    comes from running many server *processes*, not many threads in one.

    Parameters
    ----------
    backend:
        Any execution backend (engine, pool, even a whole cluster).
    host, port:
        Bind address (``port=0``: ephemeral).
    own_backend:
        Close the backend when the server closes.
    """

    def __init__(
        self,
        backend,
        host: str = DEFAULT_HOST,
        port: int = 0,
        own_backend: bool = False,
    ):
        self.backend = backend
        self._own_backend = own_backend
        self._dispatcher = BackendDispatcher(backend)
        self._server = _ThreadingTCPServer((host, port), _ConnectionHandler)
        self._server.owner = self
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------------
    @property
    def address(self) -> tuple:
        """The bound ``(host, port)``."""
        return self._server.server_address[:2]

    def serve_forever(self) -> None:
        """Serve in the calling thread until :meth:`close` (or SIGINT)."""
        self._server.serve_forever(poll_interval=0.1)

    def start(self) -> "SocketServer":
        """Serve in a background thread; returns ``self``."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever, daemon=True
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if self._own_backend:
            self.backend.close()

    def __enter__(self) -> "SocketServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- protocol ------------------------------------------------------------
    def handle_message(self, message) -> dict:
        return self._dispatcher.handle_message(message)


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------

def reply_error(reply: dict) -> Exception:
    """The typed client-side exception a failure reply maps to.

    One mapping for every client (sync and pipelined), so the wire error
    taxonomy — ``request`` fails everywhere and never fails over,
    ``backend`` triggers failover — cannot diverge between transports.
    """
    kind = reply.get("kind", "backend")
    error = reply.get("error", "unknown server error")
    if kind == "request":
        return RemoteRequestError(error)
    if kind == "backend":
        return RemoteServerError(error)
    return TransportError(f"server protocol error: {error}")


def parse_address(address: "str | tuple") -> tuple:
    """``"host:port"`` (or an ``(host, port)`` pair) → ``(host, port)``."""
    if isinstance(address, str):
        host, sep, port = address.rpartition(":")
        if not sep or not port.isdigit():
            raise ValueError(
                f"expected an address like 'host:port', got {address!r}"
            )
        return host or DEFAULT_HOST, int(port)
    host, port = address
    return str(host), int(port)


class RemoteBackend(BaseBackend):
    """An execution backend on the far side of a socket.

    Connects lazily, keeps one connection per backend, and reconnects once
    on a stale-connection failure (selection is pure and LRU-cached, so a
    retried request is idempotent).  Transport failures raise
    :class:`TransportError` — a :class:`BackendError`, so a
    :class:`~repro.serve.cluster.ClusterRouter` fails over to a replica.

    ``call_timeout`` is deliberately finite by default: a member that
    *hangs* (half-open socket, stopped process) must eventually surface as
    a :class:`TransportError` or failover never engages.  Raise it for
    giant cold batches, or pass ``None`` to block forever.
    """

    kind = "remote"

    #: Default per-call socket timeout (seconds).  Generous enough for a
    #: cold batch of selections, finite so hung members fail over.
    DEFAULT_CALL_TIMEOUT = 120.0

    def __init__(
        self,
        address: "str | tuple",
        connect_timeout: float = 5.0,
        call_timeout: Optional[float] = DEFAULT_CALL_TIMEOUT,
        trace: bool = False,
    ):
        super().__init__()
        self.host, self.port = parse_address(address)
        self.connect_timeout = connect_timeout
        self.call_timeout = call_timeout
        self.trace = trace
        #: The most recent completed trace (``{"id", "stages"}``) when
        #: ``trace=True``; per-stage histograms accumulate in
        #: ``self.metrics`` under ``trace.<stage>``.
        self.last_trace: Optional[dict] = None
        self._sock: Optional[socket.socket] = None

    # -- connection ----------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _record_trace(self, reply: dict, round_trip: float) -> None:
        carried = reply.get(TRACE_KEY)
        if not isinstance(carried, dict):
            return
        # The only stage the client can see that the server cannot: wire
        # time, i.e. the round trip minus the server's own wall clock.
        stages = list(carried.get("stages", ()))
        stages.append(make_stage(
            "transport", round_trip - stage_seconds(carried, "server")
        ))
        trace = {"id": carried.get("id"), "stages": stages}
        for entry in stages:
            self.metrics.histogram(
                f"trace.{entry['stage']}"
            ).observe(entry["seconds"])
        self.last_trace = trace

    def _call(self, message: dict, *, reconnect: bool = True) -> dict:
        self._require_open()
        if self.trace and TRACE_KEY not in message:
            message = {**message, TRACE_KEY: {"id": resolve_trace_id("sync")}}
        fresh = self._sock is None
        start = time.perf_counter()
        try:
            if self._sock is None:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
                self._sock.settimeout(self.call_timeout)
            send_frame(self._sock, message)
            reply = recv_frame(self._sock)
            if reply is None:
                raise TransportError("server closed the connection")
            if self.trace:
                self._record_trace(reply, time.perf_counter() - start)
            return reply
        except (OSError, TransportError) as error:
            self._drop_connection()
            if reconnect and not fresh:
                # The kept connection may simply have gone stale (server
                # restarted between calls): retry once on a fresh one.
                return self._call(message, reconnect=False)
            if isinstance(error, TransportError):
                raise
            raise TransportError(
                f"socket to {self.address} failed: "
                f"{type(error).__name__}: {error}"
            ) from error

    _reply_error = staticmethod(reply_error)

    def ping(self) -> bool:
        """Liveness probe (raises :class:`TransportError` when unreachable)."""
        return bool(self._call({"op": "ping"}).get("ok"))

    def server_metrics(self) -> dict:
        """The server-side telemetry snapshot (``metrics`` op):
        ``{"dispatcher": ..., "backend": ...}`` registry snapshots."""
        reply = self._call({"op": "metrics"})
        if not reply.get("ok"):
            raise self._reply_error(reply)
        return reply["metrics"]

    # -- protocol ------------------------------------------------------------
    def select_many(
        self,
        requests: Sequence[SelectionRequest],
        raise_on_error: bool = True,
    ) -> list:
        start = time.perf_counter()
        try:
            reply = self._call({
                "op": "select_many",
                "requests": [request.to_wire() for request in requests],
            })
            if not reply.get("ok"):
                raise self._reply_error(reply)
        except BackendError as error:
            # Every request of the batch went unserved: the stats envelope
            # counts them all, so errors/qps stay honest under failure.
            self._account([error] * len(requests),
                          time.perf_counter() - start)
            raise
        entries: list = []
        for result in reply["results"]:
            if result.get("ok"):
                entries.append(SelectionResponse.from_wire(result["response"]))
            else:
                entries.append(self._reply_error(result))
        self._account(entries, time.perf_counter() - start)
        return self._finish(entries, raise_on_error)

    def select(self, request: SelectionRequest) -> SelectionResponse:
        start = time.perf_counter()
        try:
            reply = self._call({"op": "select", "request": request.to_wire()})
            if not reply.get("ok"):
                raise self._reply_error(reply)
        except Exception as error:
            self._account([error], time.perf_counter() - start)
            raise
        response = SelectionResponse.from_wire(reply["response"])
        self._account([response], time.perf_counter() - start)
        return response

    def stats(self) -> dict:
        payload = super().stats()
        payload["address"] = self.address
        try:
            payload["server"] = self._call({"op": "stats"})["stats"]
        except (BackendError, KeyError):
            payload["server"] = None
        return payload

    def close(self) -> None:
        self._drop_connection()
        super().close()


# ---------------------------------------------------------------------------
# Subprocess servers (benchmarks, tests, CLI-free embedding)
# ---------------------------------------------------------------------------

def _build_server(backend, host, port, transport, tenants=None,
                  http_cache_size=0):
    """The bound server of one child process (shared by both mains).

    ``"socket"``/``"asyncio"`` speak the length-prefixed framing;
    ``"http"`` stands the JSON gateway up over the same backend
    (``tenants``: optional path of a tenants config file;
    ``http_cache_size``: response-cache entries, 0 = off).
    """
    if transport == "asyncio":
        from repro.serve.aio import AsyncSocketServer

        return AsyncSocketServer(backend, host=host, port=port,
                                 own_backend=True).start()
    if transport == "http":
        from repro.gateway.app import HttpGateway
        from repro.gateway.tenants import TenantRegistry

        registry = (TenantRegistry.from_file(tenants)
                    if tenants is not None else None)
        return HttpGateway(backend, host=host, port=port,
                           tenants=registry, own_backend=True,
                           cache_size=http_cache_size).start()
    return SocketServer(backend, host=host, port=port, own_backend=True)


def _server_process_main(
    conn, artifact, workers, cache_size, routing, algorithm, host, port,
    transport, tenants=None, http_cache_size=0,
) -> None:
    from repro.serve.backend import artifact_backend

    signal.signal(signal.SIGTERM, lambda *args: sys.exit(0))
    try:
        backend = artifact_backend(
            artifact,
            workers=workers,
            cache_size=cache_size,
            routing=routing,
            algorithm=algorithm,
        )
        server = _build_server(backend, host, port, transport,
                               tenants=tenants,
                               http_cache_size=http_cache_size)
    # Crossing a process boundary: the failure text travels back over the
    # pipe and spawn_artifact_server re-wraps it as a typed TransportError.
    except Exception as error:  # reprolint: ignore[error-taxonomy]
        conn.send(("error", f"{type(error).__name__}: {error}"))
        conn.close()
        return
    conn.send(("ok", server.address))
    conn.close()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()


class SpawnedServer:
    """Handle on a socket server running in a child process."""

    def __init__(self, process, host: str, port: int) -> None:
        self.process = process
        self.host = host
        self.port = port

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def connect(self, **options) -> RemoteBackend:
        """A fresh :class:`RemoteBackend` speaking to this server."""
        return RemoteBackend((self.host, self.port), **options)

    def connect_pipelined(self, **options):
        """A fresh pipelined :class:`~repro.serve.aio.AsyncRemoteBackend`
        speaking to this server (works against either transport)."""
        from repro.serve.aio import AsyncRemoteBackend

        return AsyncRemoteBackend((self.host, self.port), **options)

    def connect_http(self, **options):
        """A fresh :class:`~repro.gateway.HttpBackend` speaking to this
        server (requires ``transport="http"`` at spawn time)."""
        from repro.gateway import HttpBackend

        return HttpBackend((self.host, self.port), **options)

    def kill(self) -> None:
        """Hard-stop the server (simulates a member host dying)."""
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)

    def close(self) -> None:
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=1.0)

    def __enter__(self) -> "SpawnedServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def spawn_artifact_server(
    artifact: "str | Path",
    workers: int = 1,
    cache_size: int = 256,
    routing: str = "shared",
    algorithm: Optional[str] = None,
    host: str = DEFAULT_HOST,
    port: int = 0,
    startup_timeout: float = 120.0,
    transport: str = "socket",
    tenants: "Optional[str | Path]" = None,
    http_cache_size: int = 0,
) -> SpawnedServer:
    """Start a socket server over ``artifact`` in a child process.

    The child warm-starts its backend (``workers=1``: one engine;
    ``workers>1``: an :class:`EnginePool`) via ``Engine.load`` — the
    paper's phase split is what makes spawning a member this cheap — binds
    ``host:port`` (``port=0``: ephemeral), and reports the bound address
    back before serving.  ``transport`` picks the threaded
    :class:`SocketServer` (``"socket"``) or the pipelined
    :class:`~repro.serve.aio.AsyncSocketServer` (``"asyncio"``); both
    speak the same framing, so either client connects to either —
    or the HTTP/JSON gateway (``"http"``, optionally with a ``tenants``
    config path; connect with
    :class:`~repro.gateway.client.HttpBackend`).  This is
    how the cluster benchmarks and the failover tests stand up members on
    one machine; production members are the same server started on real
    hosts (``python -m repro serve --transport socket|asyncio|http``).
    """
    if transport not in ("socket", "asyncio", "http"):
        raise ValueError(f"unknown transport {transport!r}")
    context = multiprocessing.get_context()
    parent_conn, child_conn = context.Pipe()
    process = context.Process(
        target=_server_process_main,
        args=(child_conn, str(artifact), workers, cache_size, routing,
              algorithm, host, port, transport,
              None if tenants is None else str(tenants),
              http_cache_size),
        # A pooled member must be able to fork its own workers, which
        # daemonic processes may not.
        daemon=(workers == 1),
    )
    process.start()
    child_conn.close()
    if not parent_conn.poll(startup_timeout):
        process.terminate()
        process.join(timeout=5.0)
        raise TransportError(
            f"server over {artifact} did not report an address within "
            f"{startup_timeout:.0f}s"
        )
    status, detail = parent_conn.recv()
    parent_conn.close()
    if status != "ok":
        process.join(timeout=5.0)
        raise TransportError(f"server over {artifact} failed to start: {detail}")
    bound_host, bound_port = detail
    return SpawnedServer(process, bound_host, bound_port)


def _store_server_process_main(
    conn, store_path, capacity, cache_size, host, port, transport,
    tenants=None, http_cache_size=0,
) -> None:
    from repro.api.store import ArtifactStore
    from repro.serve.backend import InProcessBackend

    signal.signal(signal.SIGTERM, lambda *args: sys.exit(0))
    try:
        backend = InProcessBackend.from_store(
            ArtifactStore(store_path),
            capacity=capacity,
            cache_size=cache_size,
        )
        server = _build_server(backend, host, port, transport,
                               tenants=tenants,
                               http_cache_size=http_cache_size)
    # Crossing a process boundary: the failure text travels back over the
    # pipe and spawn_store_server re-wraps it as a typed TransportError.
    except Exception as error:  # reprolint: ignore[error-taxonomy]
        conn.send(("error", f"{type(error).__name__}: {error}"))
        conn.close()
        return
    conn.send(("ok", server.address))
    conn.close()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()


def spawn_store_server(
    store: "str | Path",
    capacity: int = 4,
    cache_size: int = 256,
    host: str = DEFAULT_HOST,
    port: int = 0,
    startup_timeout: float = 120.0,
    transport: str = "asyncio",
    tenants: "Optional[str | Path]" = None,
    http_cache_size: int = 0,
) -> SpawnedServer:
    """Start a *multi-dataset* server over an :class:`ArtifactStore` path.

    The child hosts a :class:`~repro.api.Workspace` (capacity-bounded
    engine LRU keyed by dataset) behind :class:`InProcessBackend`, so one
    server answers requests for every dataset in the store — the topology
    the zipf multi-dataset load harness drives.  Requests must carry
    ``dataset``; ``transport`` defaults to the pipelined asyncio server
    because that is what an open-loop client saturates.  ``"http"``
    serves the same workspace through the JSON gateway (``tenants``:
    optional tenants-config path; connect with
    :class:`~repro.gateway.client.HttpBackend`).
    """
    if transport not in ("socket", "asyncio", "http"):
        raise ValueError(f"unknown transport {transport!r}")
    context = multiprocessing.get_context()
    parent_conn, child_conn = context.Pipe()
    process = context.Process(
        target=_store_server_process_main,
        args=(child_conn, str(store), capacity, cache_size, host, port,
              transport, None if tenants is None else str(tenants),
              http_cache_size),
        daemon=True,
    )
    process.start()
    child_conn.close()
    if not parent_conn.poll(startup_timeout):
        process.terminate()
        process.join(timeout=5.0)
        raise TransportError(
            f"store server over {store} did not report an address within "
            f"{startup_timeout:.0f}s"
        )
    status, detail = parent_conn.recv()
    parent_conn.close()
    if status != "ok":
        process.join(timeout=5.0)
        raise TransportError(
            f"store server over {store} failed to start: {detail}"
        )
    bound_host, bound_port = detail
    return SpawnedServer(process, bound_host, bound_port)
