"""SubTabService — serve per-query sub-table selections at session scale.

Since the Engine API landed, this module is a thin compatibility layer:
:class:`SubTabService` is an :class:`repro.api.Engine` fixed to the
``subtab`` algorithm that keeps the original ``select(k, l, query,
targets) -> SubTable`` signature and accessors.  The mechanics it used to
implement locally now live where every algorithm benefits from them:

* the LRU memoization of finished selections is the Engine's
  (:mod:`repro.api.cache`), keyed by query fingerprint + dimensions +
  targets + mode overrides, for *any* registered selector;
* the precomputed full-table tuple-vector cache and the filter-only
  fast path are :class:`~repro.baselines.subtab_adapter.SubTabSelector`'s
  (``view_row_vectors``), bit-identical to the cold pipeline's vectors.

New code should use :class:`repro.api.Engine` directly — it adds typed
requests/responses, per-request mode overrides, and artifact save/load.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

import numpy as np

from repro.api.cache import (
    FULL_TABLE_FINGERPRINT,
    CacheStats,
    LRUCache,
    query_fingerprint,
)
from repro.api.engine import Engine
from repro.api.request import SelectionRequest
from repro.baselines.subtab_adapter import SubTabSelector
from repro.core.config import SubTabConfig
from repro.core.result import SubTable
from repro.core.subtab import SubTab

__all__ = [
    "CacheStats",
    "FULL_TABLE_FINGERPRINT",
    "LRUCache",
    "SubTabService",
    "query_fingerprint",
]


class SubTabService(Engine):
    """Serves sub-table selections for exploration sessions over one table.

    >>> from repro.frame import DataFrame
    >>> frame = DataFrame({"a": [1.0, 2.0, 30.0, 31.0] * 10,
    ...                    "b": ["x", "x", "y", "y"] * 10,
    ...                    "c": [0.1, 0.2, 9.0, 9.1] * 10})
    >>> service = SubTabService(SubTabConfig(k=2, l=2, seed=0)).fit(frame)
    >>> service.select().shape
    (2, 2)
    >>> service.cache_stats.misses
    1
    >>> service.select().shape  # served from the LRU
    (2, 2)
    >>> service.cache_stats.hits
    1

    Parameters
    ----------
    config:
        Pipeline configuration for the internally-owned :class:`SubTab`.
        Ignored when ``subtab`` is given.
    subtab:
        An existing (possibly already fitted) :class:`SubTab` to serve.
    cache_size:
        Capacity of the selection LRU.
    """

    name = "SubTabService"

    def __init__(
        self,
        config: Optional[SubTabConfig] = None,
        subtab: Optional[SubTab] = None,
        cache_size: int = 256,
    ):
        warnings.warn(
            "SubTabService is deprecated; use repro.api.Engine (one dataset) "
            "or repro.api.Workspace (many datasets) instead — same serving "
            "semantics plus typed requests, artifacts, and routing",
            DeprecationWarning,
            stacklevel=2,
        )
        if subtab is not None and config is not None:
            raise ValueError("pass either config or a subtab, not both")
        selector = SubTabSelector(subtab=subtab) if subtab is not None else None
        super().__init__(
            algorithm="subtab",
            config=selector.config if selector is not None else config,
            selector=selector,
            cache_size=cache_size,
        )

    @property
    def subtab(self) -> SubTab:
        return self._selector.subtab

    # -- vector cache ------------------------------------------------------------
    def view_row_vectors(self, rows: np.ndarray, columns: Sequence[str]) -> np.ndarray:
        """(len(rows), d) tuple-vectors of the query view.

        Delegates to the selector's cached fast path — bit-identical to
        ``model.row_vectors(binned.subset(rows, columns))``.
        """
        self._require_fitted()
        return self._selector.view_row_vectors(rows, columns)

    # -- serving -----------------------------------------------------------------
    def select(
        self,
        k: Optional[int] = None,
        l: Optional[int] = None,
        query=None,
        targets: Sequence[str] = (),
    ) -> SubTable:
        """Select a k x l sub-table of T (or of a query result over T).

        Same contract as :meth:`repro.core.subtab.SubTab.select` for the
        ``(k, l, query, targets)`` subset; repeated calls with an
        equivalent combination are served from the LRU without re-running
        clustering.  Fairness-constrained selection is not cached — use
        :meth:`SubTab.select` with ``fairness=...`` directly, or an
        :class:`~repro.api.Engine` request.

        Served :class:`SubTable` objects are shared with the cache: treat
        them as immutable.  Mutating a returned result (its
        ``row_indices``, ``columns``, ``targets`` lists or its frame)
        would corrupt the cached entry for every later request.
        """
        request = SelectionRequest(k=k, l=l, query=query, targets=tuple(targets))
        return super().select(request).subtable
