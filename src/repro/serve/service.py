"""SubTabService — serve per-query sub-table selections at session scale.

The paper's interactivity argument (Alg. 2 / Fig. 9) is that the cell
embedding is trained once and every query display is served by slicing the
token matrix.  This module pushes that argument to its serving-layer
conclusion:

* **Shared token space.**  Query views produced by
  :meth:`~repro.binning.pipeline.BinnedTable.subset` gather the parent's
  global token ids, so the one trained model is valid on every view.
* **Cached vectors.**  At fit time the service materializes the full-table
  tuple-vectors ``(n, d)`` once; any query that keeps all columns (the
  common filter-only shape) is served by slicing that cache.  Projected
  views gather straight from the model's ``(vocab, d)`` vectors — O(vocab)
  resident memory, never an O(n * m * d) tensor.
* **Selection memoization.**  Finished selections are memoized in an LRU
  keyed by ``(query fingerprint, k, l, targets)``.  EDA sessions revisit
  states constantly (back-navigation, replay, shared dashboards); a revisit
  is served from the cache without touching the selection pipeline.

The service exposes the same ``select(k, l, query=..., targets=...)``
protocol as :class:`~repro.core.subtab.SubTab` and the baseline selectors,
so session replay and the experiment harness can drive it unchanged — and
its results are bit-identical to the cold pipeline's (the cached vectors are
the same floats the model would produce).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Sequence

import numpy as np

from repro.binning.pipeline import normalize_row_indices
from repro.core.config import SubTabConfig
from repro.core.result import SubTable, subtable_from_selection
from repro.core.selection import centroid_selection
from repro.core.subtab import SubTab
from repro.utils.rng import ensure_rng

FULL_TABLE_FINGERPRINT = "<full-table>"


def query_fingerprint(query: Any) -> str:
    """A stable cache key for a query object.

    ``None`` (the full table) has a fixed fingerprint.  Objects exposing
    ``fingerprint()`` are asked directly; otherwise ``describe()`` (the
    :class:`~repro.queries.ops.SPQuery` protocol, which renders predicates
    with their values) is used, prefixed with the type name.  Custom query
    classes should make ``describe()``/``fingerprint()`` injective over
    semantically distinct queries — two queries with the same fingerprint
    share a cache slot.

    Queries exposing neither method are rejected: falling back to
    ``repr()`` would embed memory addresses for classes without a custom
    ``__repr__``, and a recycled address silently serves another query's
    cached selection.
    """
    if query is None:
        return FULL_TABLE_FINGERPRINT
    fingerprint = getattr(query, "fingerprint", None)
    if callable(fingerprint):
        return str(fingerprint())
    describe = getattr(query, "describe", None)
    if callable(describe):
        return f"{type(query).__name__}:{describe()}"
    raise TypeError(
        f"cannot fingerprint {type(query).__name__}: query objects served "
        "through SubTabService must expose fingerprint() or describe()"
    )


@dataclass
class CacheStats:
    """Counters of one :class:`LRUCache` (a snapshot, not a live view)."""

    hits: int
    misses: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """A small least-recently-used map with hit/miss counters.

    Plain ``OrderedDict`` bookkeeping — no threads, no TTL — because the
    serving loop is synchronous; the interesting property is the eviction
    order and the stats the benchmarks read.
    """

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()

    def get(self, key: Hashable) -> Optional[Any]:
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            size=len(self._entries),
            maxsize=self.maxsize,
        )


class SubTabService:
    """Serves sub-table selections for exploration sessions over one table.

    >>> from repro.frame import DataFrame
    >>> frame = DataFrame({"a": [1.0, 2.0, 30.0, 31.0] * 10,
    ...                    "b": ["x", "x", "y", "y"] * 10,
    ...                    "c": [0.1, 0.2, 9.0, 9.1] * 10})
    >>> service = SubTabService(SubTabConfig(k=2, l=2, seed=0)).fit(frame)
    >>> service.select().shape
    (2, 2)
    >>> service.cache_stats.misses
    1
    >>> service.select().shape  # served from the LRU
    (2, 2)
    >>> service.cache_stats.hits
    1

    Parameters
    ----------
    config:
        Pipeline configuration for the internally-owned :class:`SubTab`.
        Ignored when ``subtab`` is given.
    subtab:
        An existing (possibly already fitted) :class:`SubTab` to serve.
    cache_size:
        Capacity of the selection LRU.
    """

    name = "SubTabService"

    def __init__(
        self,
        config: Optional[SubTabConfig] = None,
        subtab: Optional[SubTab] = None,
        cache_size: int = 256,
    ):
        if subtab is not None and config is not None:
            raise ValueError("pass either config or a subtab, not both")
        self._subtab = subtab if subtab is not None else SubTab(config)
        self._cache = LRUCache(cache_size)
        self._row_vectors: Optional[np.ndarray] = None
        self._column_index: dict[str, int] = {}
        if self._subtab.is_fitted:
            self._precompute()

    # -- lifecycle ---------------------------------------------------------------
    def fit(self, frame, binned=None) -> "SubTabService":
        """Fit the underlying pipeline and precompute the vector caches."""
        self._subtab.fit(frame, binned=binned)
        self._precompute()
        return self

    def _precompute(self) -> None:
        subtab = self._subtab
        binned = subtab.binned
        # The full-table tuple-vectors, computed once; filter-only queries
        # (all columns kept) are served by slicing this (n, d) array.
        self._row_vectors = subtab.model.row_vectors(binned)
        self._column_index = {name: j for j, name in enumerate(binned.columns)}
        self._cache.clear()

    @property
    def subtab(self) -> SubTab:
        return self._subtab

    @property
    def config(self) -> SubTabConfig:
        return self._subtab.config

    @property
    def is_fitted(self) -> bool:
        return self._subtab.is_fitted and self._row_vectors is not None

    @property
    def cache_stats(self) -> CacheStats:
        return self._cache.stats

    def clear_cache(self) -> None:
        self._cache.clear()

    # -- vector cache ------------------------------------------------------------
    def view_row_vectors(self, rows: np.ndarray, columns: Sequence[str]) -> np.ndarray:
        """(len(rows), d) tuple-vectors of the query view.

        Bit-identical to ``model.row_vectors(binned.subset(rows, columns))``:
        views gather global token ids, so slicing commutes with the
        embedding lookup.  Queries keeping every column (in table order) hit
        the precomputed full-table tuple-vectors; projections gather from
        the model's token vectors directly.
        """
        self._require_fitted()
        rows = normalize_row_indices(rows)
        col_idx = np.array(
            [self._column_index[name] for name in columns], dtype=np.int64
        )
        if self._keeps_all_columns(col_idx):
            return self._row_vectors[rows]
        binned = self._subtab.binned
        model = self._subtab.model
        return model.vectors[binned.token_ids[np.ix_(rows, col_idx)]].mean(axis=1)

    def _keeps_all_columns(self, col_idx: np.ndarray) -> bool:
        """Whether a column selection is the full table in table order."""
        return len(col_idx) == len(self._column_index) and np.array_equal(
            col_idx, np.arange(len(col_idx))
        )

    def _view_row_vectors(self, view) -> np.ndarray:
        """Tuple-vectors of an already-built view, without re-gathering ids."""
        if self._keeps_all_columns(view.column_indices):
            return self._row_vectors[view.row_indices]
        return self._subtab.model.vectors[view.token_ids].mean(axis=1)

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError("call fit(frame) before serving selections")

    # -- serving -----------------------------------------------------------------
    def select(
        self,
        k: Optional[int] = None,
        l: Optional[int] = None,
        query=None,
        targets: Sequence[str] = (),
    ) -> SubTable:
        """Select a k x l sub-table of T (or of a query result over T).

        Same contract as :meth:`repro.core.subtab.SubTab.select` for the
        ``(k, l, query, targets)`` subset; repeated calls with an
        equivalent combination are served from the LRU without re-running
        clustering.  Fairness-constrained selection is not cached — use
        :meth:`SubTab.select` with ``fairness=...`` directly for that.

        Served :class:`SubTable` objects are shared with the cache: treat
        them as immutable.  Mutating a returned result (its
        ``row_indices``, ``columns``, ``targets`` lists or its frame)
        would corrupt the cached entry for every later request.
        """
        self._require_fitted()
        subtab = self._subtab
        config = subtab.config
        k = config.k if k is None else k
        l = config.l if l is None else l
        if k < 1 or l < 1:
            raise ValueError(
                f"sub-table dimensions must be positive, got k={k}, l={l}"
            )
        targets = tuple(targets)
        key = (query_fingerprint(query), k, l, targets)
        cached = self._cache.get(key)
        if cached is not None:
            return cached

        rows, columns = subtab._apply_query(query)
        view = subtab.binned.subset(rows=rows, columns=columns)
        row_vectors = self._view_row_vectors(view)
        local_rows, selected_columns = centroid_selection(
            view,
            subtab.model,
            k,
            l,
            targets=list(targets),
            centroid_mode=config.centroid_mode,
            column_mode=config.column_mode,
            row_mode=config.row_mode,
            n_init=config.kmeans_n_init,
            seed=ensure_rng(config.seed),
            row_vectors=row_vectors,
        )
        selected_rows = [int(rows[i]) for i in local_rows]
        result = subtable_from_selection(
            subtab.frame, selected_rows, selected_columns, targets=list(targets)
        )
        self._cache.put(key, result)
        return result
