"""EnginePool: N warm-start worker processes serving one artifact.

The paper's phase split (Fig. 9) is what makes process pooling cheap: the
expensive phases — normalize, bin, embed — were paid once at fit time and
live in the saved artifact, so every worker boots by ``Engine.load``-ing it
and skips them entirely.  The pool then serves requests across the workers
and accounts aggregate throughput:

* requests and responses cross the process boundary as the JSON wire format
  (:meth:`SelectionRequest.to_json` / :meth:`SelectionResponse.from_json`),
  so pooled responses are reconstructed losslessly and compare bit-for-bit
  with the single-process path's sub-tables;
* ``routing="shared"`` (default) has all workers drain one shared queue —
  classic work stealing, best when requests are uniformly expensive;
* ``routing="hash"`` pins each request to a worker by a stable content hash
  of its wire form, sharding the selection LRUs: N workers hold N x
  ``cache_size`` distinct selections, so a working set that thrashes one
  process's LRU is served warm by the pool.  On a single core this cache
  sharding — not CPU parallelism — is where pooled QPS comes from (see
  ``benchmarks/bench_pool_qps.py``); on many cores both effects compound.

Workers are daemonic and are torn down by :meth:`close` (or the context
manager); request errors are returned per-request, not lost in a worker.  A
worker that *dies* (hard kill, crash outside the request handler) is
detected promptly — the drain and warm-start loops poll worker liveness —
and raises a typed :class:`~repro.serve.errors.PoolWorkerDied` carrying the
worker's traceback when the worker could report one.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.api.cache import stable_hash64
from repro.api.engine import Engine
from repro.api.request import SelectionRequest, SelectionResponse
from repro.serve.errors import PoolError, PoolRequestError, PoolWorkerDied

_READY = "ready"
_OK = "ok"
_ERROR = "error"
_DIED = "died"

ROUTING_MODES = ("shared", "hash")

__all__ = [
    "EnginePool",
    "PoolError",
    "PoolRequestError",
    "PoolStats",
    "PoolWorkerDied",
    "ROUTING_MODES",
]


@dataclass
class PoolStats:
    """Aggregate-throughput accounting of one :class:`EnginePool`."""

    workers: int
    served: int = 0
    errors: int = 0
    wall_seconds: float = 0.0
    startup_seconds: float = 0.0
    per_worker: dict = field(default_factory=dict)
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def qps(self) -> float:
        """Aggregate requests per second over all serving calls so far."""
        return self.served / self.wall_seconds if self.wall_seconds else 0.0

    def to_json(self) -> dict:
        """JSON-serializable snapshot, shaped like every serving-stats
        object (``type`` + ``served`` + ``seconds``/``qps``) so pool and
        cluster benchmarks report comparable fields."""
        return {
            "type": "pool",
            "workers": self.workers,
            "served": self.served,
            "errors": self.errors,
            "seconds": self.wall_seconds,
            "qps": self.qps,
            "startup_seconds": self.startup_seconds,
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "per_worker": {str(w): c for w, c in sorted(self.per_worker.items())},
        }


def _pool_worker(
    artifact: str,
    algorithm: Optional[str],
    cache_size: int,
    selector_options: Optional[dict],
    request_queue,
    result_queue,
    worker_id: int,
) -> None:
    """Worker loop: warm-start from the artifact, then drain the queue."""
    try:
        start = time.perf_counter()
        engine = Engine.load(
            artifact,
            selector_options=selector_options,
            cache_size=cache_size,
            algorithm=algorithm,
        )
        result_queue.put((_READY, worker_id, time.perf_counter() - start))
    # Crossing a process boundary: the failure text travels over the
    # result queue and start() re-wraps it as a typed PoolError.
    except Exception as error:  # reprolint: ignore[error-taxonomy]
        result_queue.put((_ERROR, worker_id, -1,
                          f"{type(error).__name__}: {error}"))
        return
    try:
        while True:
            item = request_queue.get()
            if item is None:
                break
            index, payload = item
            try:
                request = SelectionRequest.from_json(payload)
                response = engine.select(request)
                result_queue.put((_OK, worker_id, index, response.to_json()))
            # Crossing a process boundary: the drain loop re-wraps the
            # failure text as a typed PoolRequestError for that slot.
            except Exception as error:  # reprolint: ignore[error-taxonomy]
                result_queue.put((_ERROR, worker_id, index,
                                  f"{type(error).__name__}: {error}"))
    except BaseException:
        # A crash outside the per-request handler (corrupt queue item,
        # KeyboardInterrupt, ...) kills the worker loop: report the
        # traceback before exiting so the drain loop can raise a typed
        # PoolWorkerDied instead of timing out.
        try:
            result_queue.put((_DIED, worker_id, -1,
                              traceback_module.format_exc()))
        except (OSError, ValueError):
            pass  # the queue is already gone; the exit code must speak
        raise


def _route_hash(payload: str) -> int:
    """Stable content hash of a wire-form request (shared with the cluster
    ring, so worker affinity and member affinity agree)."""
    return stable_hash64(payload)


class EnginePool:
    """A pool of worker processes all serving one saved engine artifact.

    >>> with EnginePool("/tmp/flights-engine", workers=4) as pool:  # doctest: +SKIP
    ...     responses = pool.select_many(requests)
    ...     print(pool.stats.qps)

    Parameters
    ----------
    artifact:
        Path to the saved engine artifact every worker warm-starts from.
    workers:
        Number of worker processes.
    cache_size:
        Per-worker selection-LRU capacity (the pool's aggregate capacity is
        ``workers * cache_size`` under hash routing).
    algorithm:
        Optional algorithm override forwarded to every ``Engine.load``.
    routing:
        ``"shared"`` (one queue, work stealing) or ``"hash"`` (per-worker
        queues, requests pinned by content hash for LRU affinity).
    start_method:
        ``multiprocessing`` start method; ``None`` uses the platform default.
    """

    def __init__(
        self,
        artifact: "str | Path",
        workers: int = 2,
        cache_size: int = 256,
        algorithm: Optional[str] = None,
        selector_options: Optional[dict] = None,
        routing: str = "shared",
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if routing not in ROUTING_MODES:
            raise ValueError(
                f"unknown routing {routing!r}; expected one of {ROUTING_MODES}"
            )
        self.artifact = str(artifact)
        self.workers = workers
        self.cache_size = cache_size
        self.algorithm = algorithm
        self.routing = routing
        self._selector_options = selector_options
        self._context = (multiprocessing.get_context(start_method)
                         if start_method else multiprocessing.get_context())
        self._processes: list = []
        self._request_queues: list = []
        self._result_queue = None
        self._stats: Optional[PoolStats] = None
        self._started = False
        self._closed = False

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "EnginePool":
        """Spawn the workers and block until every engine is warm."""
        if self._started:
            return self
        if self._closed:
            raise PoolError("pool is closed; construct a new one")
        self._result_queue = self._context.Queue()
        n_queues = self.workers if self.routing == "hash" else 1
        self._request_queues = [self._context.Queue() for _ in range(n_queues)]
        start = time.perf_counter()
        for worker_id in range(self.workers):
            queue = self._request_queues[worker_id % n_queues]
            process = self._context.Process(
                target=_pool_worker,
                args=(self.artifact, self.algorithm, self.cache_size,
                      self._selector_options, queue, self._result_queue,
                      worker_id),
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        stats = PoolStats(workers=self.workers,
                          per_worker={i: 0 for i in range(self.workers)})
        ready = 0
        while ready < self.workers:
            try:
                message = self._result_queue.get(timeout=0.25)
            except queue_module.Empty:
                died = self._first_dead()
                if died is not None:
                    worker_id, process = died
                    self.close()
                    raise PoolWorkerDied(worker_id, exitcode=process.exitcode)
                continue
            if message[0] == _READY:
                ready += 1
                continue
            self.close()
            if message[0] == _DIED:
                raise PoolWorkerDied(message[1], traceback=message[3])
            raise PoolError(
                f"pool worker {message[1]} failed to warm-start from "
                f"{self.artifact}: {message[3]}"
            )
        stats.startup_seconds = time.perf_counter() - start
        self._stats = stats
        self._started = True
        return self

    def __enter__(self) -> "EnginePool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop the workers (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for queue in self._request_queues:
            workers_on_queue = (1 if self.routing == "hash"
                                else len(self._processes))
            for _ in range(workers_on_queue):
                try:
                    queue.put(None)
                except (OSError, ValueError):
                    pass  # queue already closed: the join/terminate below wins
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for queue in self._request_queues:
            queue.close()
        if self._result_queue is not None:
            self._result_queue.close()

    # -- serving ------------------------------------------------------------
    def _first_dead(self) -> Optional[tuple]:
        """``(worker_id, process)`` of the first dead worker, else ``None``."""
        for worker_id, process in enumerate(self._processes):
            if not process.is_alive():
                return worker_id, process
        return None

    def _require_running(self) -> None:
        if not self._started or self._closed:
            raise PoolError("pool is not running; call start() (or use "
                            "`with EnginePool(...) as pool:`)")
        died = self._first_dead()
        if died is not None:
            worker_id, process = died
            raise PoolWorkerDied(worker_id, exitcode=process.exitcode)

    def select_many(
        self,
        requests: Sequence[SelectionRequest],
        raise_on_error: bool = True,
    ) -> list:
        """Serve a batch across the workers; responses in request order.

        Each entry of the returned list is a :class:`SelectionResponse`
        (reconstructed from the worker's wire payload).  When a request
        fails inside a worker, the first failure raises
        :class:`PoolRequestError` (``raise_on_error=True``, after the batch
        drains) or the entry is the :class:`PoolRequestError` itself
        (``raise_on_error=False``).
        """
        self._require_running()
        payloads = [request.to_json() for request in requests]
        start = time.perf_counter()
        for index, payload in enumerate(payloads):
            if self.routing == "hash":
                queue = self._request_queues[
                    _route_hash(payload) % len(self._request_queues)
                ]
            else:
                queue = self._request_queues[0]
            queue.put((index, payload))
        results: list = [None] * len(payloads)
        first_error: Optional[PoolRequestError] = None
        collected = 0
        while collected < len(payloads):
            try:
                kind, worker_id, index, payload = self._result_queue.get(
                    timeout=0.25
                )
            except queue_module.Empty:
                self._require_running()  # a dead worker raises instead of hanging
                continue
            if kind == _DIED:
                # The worker reported its own crash before exiting: raise
                # promptly, carrying the worker-side traceback.
                process = self._processes[worker_id]
                process.join(timeout=1.0)
                raise PoolWorkerDied(worker_id, exitcode=process.exitcode,
                                     traceback=payload)
            collected += 1
            self._stats.per_worker[worker_id] += 1
            if kind == _OK:
                response = SelectionResponse.from_json(payload)
                results[index] = response
                self._stats.served += 1
                if response.cache_hit:
                    self._stats.cache_hits += 1
                else:
                    self._stats.cache_misses += 1
            else:
                error = PoolRequestError(index, worker_id, payload)
                results[index] = error
                self._stats.errors += 1
                first_error = first_error or error
        self._stats.wall_seconds += time.perf_counter() - start
        if first_error is not None and raise_on_error:
            raise first_error
        return results

    def select(self, request: SelectionRequest) -> SelectionResponse:
        """Serve one request through the pool."""
        return self.select_many([request])[0]

    @property
    def stats(self) -> PoolStats:
        """Aggregate accounting so far (served, errors, wall time, QPS)."""
        if self._stats is None:
            return PoolStats(workers=self.workers)
        return self._stats
