"""Session-serving layer for SubTab (the ROADMAP's scale direction).

Public surface::

    from repro.serve import SubTabService, LRUCache, query_fingerprint

:class:`SubTabService` wraps a fitted SubTab pipeline behind a
request/response interface tuned for interactive exploration sessions: the
full table's cell vectors are computed exactly once at fit time, every query
result's tuple-vectors are served by slicing that cache, and repeated
requests (session replay, back-navigation, dashboards polling the same
query) hit an LRU of finished selections.
"""

from repro.serve.service import (
    CacheStats,
    LRUCache,
    SubTabService,
    query_fingerprint,
)

__all__ = [
    "CacheStats",
    "LRUCache",
    "SubTabService",
    "query_fingerprint",
]
