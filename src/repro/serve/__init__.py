"""The serving layer: one ExecutionBackend protocol, many topologies.

Public surface::

    from repro.serve import (
        ExecutionBackend, InProcessBackend, PoolBackend,   # local backends
        RemoteBackend, SocketServer, spawn_artifact_server, # socket transport
        AsyncRemoteBackend, AsyncSocketServer,             # pipelined asyncio
        ClusterRouter, ReplicaPolicy,                      # consistent-hash ring
        EnginePool, PoolStats,                             # process pool
        BackendError, RequestError, TransportError,        # error taxonomy
        PoolError, PoolRequestError, PoolWorkerDied, ClusterError,
        PipelineCancelled,
        artifact_backend,
    )

Every serving path implements the same four-method
:class:`~repro.serve.backend.ExecutionBackend` protocol (``select``,
``select_many``, ``stats``, ``close``), so topologies compose: an
:class:`InProcessBackend` wraps one engine or workspace, a
:class:`PoolBackend` wraps an :class:`EnginePool` of warm-start worker
processes, a :class:`RemoteBackend` speaks the length-prefixed JSON socket
protocol of :class:`SocketServer` across a host boundary, and a
:class:`ClusterRouter` consistent-hashes ``(dataset, request-hash)`` over
member backends with per-dataset replication and failover — and is itself
a backend, so clusters nest (a cluster of pools of engines).

:class:`SubTabService` is the original single-table serving API, kept as a
deprecated shim over :class:`repro.api.Engine`.  The cache primitives
re-exported here live in :mod:`repro.api.cache`.
"""

from repro.api.cache import CacheStats, LRUCache, query_fingerprint
from repro.serve.aio import AsyncRemoteBackend, AsyncSocketServer
from repro.serve.backend import (
    BaseBackend,
    ExecutionBackend,
    InProcessBackend,
    PoolBackend,
    artifact_backend,
)
from repro.serve.cluster import (
    ClusterRouter,
    ReplicaPolicy,
    make_replica_policy,
    replica_policy_names,
    request_key,
)
from repro.serve.errors import (
    BackendError,
    ClusterError,
    PipelineCancelled,
    PoolError,
    PoolRequestError,
    PoolWorkerDied,
    RemoteRequestError,
    RemoteServerError,
    RequestError,
    TransportError,
)
from repro.serve.pool import EnginePool, PoolStats
from repro.serve.service import SubTabService
from repro.serve.transport import (
    RemoteBackend,
    SocketServer,
    SpawnedServer,
    recv_frame,
    send_frame,
    spawn_artifact_server,
    spawn_store_server,
)

__all__ = [
    "AsyncRemoteBackend",
    "AsyncSocketServer",
    "BackendError",
    "BaseBackend",
    "CacheStats",
    "ClusterError",
    "ClusterRouter",
    "EnginePool",
    "ExecutionBackend",
    "InProcessBackend",
    "LRUCache",
    "PipelineCancelled",
    "PoolBackend",
    "PoolError",
    "PoolRequestError",
    "PoolStats",
    "PoolWorkerDied",
    "RemoteBackend",
    "RemoteRequestError",
    "RemoteServerError",
    "ReplicaPolicy",
    "RequestError",
    "SocketServer",
    "SpawnedServer",
    "SubTabService",
    "TransportError",
    "artifact_backend",
    "make_replica_policy",
    "query_fingerprint",
    "recv_frame",
    "replica_policy_names",
    "request_key",
    "send_frame",
    "spawn_artifact_server",
    "spawn_store_server",
]
