"""Multi-process serving layer (and the legacy SubTabService shim).

Public surface::

    from repro.serve import EnginePool, PoolStats, SubTabService

:class:`EnginePool` serves one saved engine artifact from N warm-start
worker processes (each ``Engine.load``-s the artifact and skips all heavy
preprocessing), draining requests from a shared queue — or, with
``routing="hash"``, from per-worker queues that shard the selection LRUs —
with aggregate-QPS accounting.

:class:`SubTabService` is the original single-table serving API, kept as a
deprecated shim over :class:`repro.api.Engine`; new code should use
:class:`repro.api.Engine` (one dataset) or :class:`repro.api.Workspace`
(many datasets).  The cache primitives re-exported here live in
:mod:`repro.api.cache`.
"""

from repro.api.cache import CacheStats, LRUCache, query_fingerprint
from repro.serve.pool import (
    EnginePool,
    PoolError,
    PoolRequestError,
    PoolStats,
)
from repro.serve.service import SubTabService

__all__ = [
    "CacheStats",
    "EnginePool",
    "LRUCache",
    "PoolError",
    "PoolRequestError",
    "PoolStats",
    "SubTabService",
    "query_fingerprint",
]
