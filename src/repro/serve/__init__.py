"""Session-serving layer for SubTab (compatibility shim over repro.api).

Public surface::

    from repro.serve import SubTabService, LRUCache, query_fingerprint

:class:`SubTabService` is now a thin wrapper over :class:`repro.api.Engine`
fixed to the ``subtab`` algorithm; the cache primitives re-exported here
live in :mod:`repro.api.cache`.  New code should prefer the Engine — it
serves any registered selector, takes typed requests, and persists its
fitted state.
"""

from repro.api.cache import CacheStats, LRUCache, query_fingerprint
from repro.serve.service import SubTabService

__all__ = [
    "CacheStats",
    "LRUCache",
    "SubTabService",
    "query_fingerprint",
]
