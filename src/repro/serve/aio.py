"""Asyncio transport: many frames in flight per connection.

The synchronous :class:`~repro.serve.transport.SocketServer` /
:class:`~repro.serve.transport.RemoteBackend` pair is strict
request/response per connection — a client can never have more than one
frame in flight, so every request pays a full round trip of client
encode, server decode, backend compute, server encode, client decode in
sequence.  This module pipelines those stages without touching the wire
format:

* :class:`AsyncSocketServer` — an asyncio server speaking the exact
  4-byte length-prefixed JSON framing of :mod:`repro.serve.transport`
  (same codec helpers, same :class:`~repro.serve.transport
  .BackendDispatcher`, same error taxonomy).  The event loop keeps
  reading frames while a per-connection consumer drains everything
  queued into **adaptive micro-batches** — one thread-executor hop
  dispatches the whole burst and one write flushes its replies — so a
  pipelining client pays the cross-thread handoff per *batch*, not per
  frame, and many frames from one connection are in flight at once.
  Replies carry the client's echoed ``"id"``, which is what makes
  out-of-order completion safe.
* :class:`AsyncRemoteBackend` — the pipelined client: a normal
  synchronous :class:`~repro.serve.backend.ExecutionBackend` (it plugs
  into a :class:`~repro.serve.cluster.ClusterRouter` like any member)
  that multiplexes ``select_many`` as a stream of id-tagged ``select``
  frames over **one** socket, windowed at ``window`` in flight, and
  correlates replies by id on a background reader thread.

Interoperability is bit-for-bit by construction: the sync client speaks
to the async server (it never sends an id, and its one-in-flight
discipline needs no correlation), and the pipelined client speaks to the
sync server (which handles its frames sequentially and echoes ids via the
shared dispatcher).  ``tests/test_backend_equivalence.py`` asserts all
four client x server pairings produce identical responses.

Failure semantics match the sync transport: transport faults are
:class:`~repro.serve.errors.TransportError` (a failover trigger), a
server-reported backend fault is
:class:`~repro.serve.errors.RemoteServerError`, a rejected request is
:class:`~repro.serve.errors.RemoteRequestError` (never failover), and
closing the client with frames in flight fails them all with
:class:`~repro.serve.errors.PipelineCancelled`.
"""

from __future__ import annotations

import asyncio
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

from repro.api.request import SelectionRequest, SelectionResponse
from repro.obs import TRACE_KEY, make_stage, resolve_trace_id, stage_seconds
from repro.serve.backend import BaseBackend
from repro.serve.errors import (
    BackendError,
    PipelineCancelled,
    TransportError,
)
from repro.serve.transport import (
    DEFAULT_HOST,
    FRAME_HEADER_SIZE,
    BackendDispatcher,
    decode_payload,
    encode_frame,
    frame_length,
    parse_address,
    reply_error,
)

#: Default cap on in-flight frames per pipelined ``select_many`` — enough
#: to keep every stage of the pipeline busy (and the corked bursts large),
#: small enough that a slow server cannot make the client buffer an
#: unbounded reply backlog.
DEFAULT_WINDOW = 64

#: Most frames one server-side micro-batch dispatches per executor hop.
DISPATCH_BATCH = 64

#: Per-connection cap on decoded frames awaiting dispatch; beyond it the
#: reader stops draining the socket and TCP backpressure reaches the
#: client (its send window is the real limiter — this is a flood guard).
QUEUE_DEPTH = 1024

#: End-of-connection marker on the frame queue.
_EOF = object()


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------

class AsyncSocketServer:
    """Serve an :class:`~repro.serve.backend.ExecutionBackend` over TCP
    with pipelined (many-in-flight) frame handling.

    >>> server = AsyncSocketServer(backend, port=0).start()  # doctest: +SKIP
    >>> AsyncRemoteBackend(server.address).select(request)   # doctest: +SKIP

    The event loop runs in a dedicated background thread (``start()``) so
    the server embeds in synchronous code exactly like the threaded
    :class:`~repro.serve.transport.SocketServer`; ``serve_forever()``
    blocks the calling thread until :meth:`close` (the CLI server mode).

    Each connection's frames are dispatched in adaptive micro-batches: a
    consumer task drains everything the reader has queued, one executor
    hop runs the whole burst through the shared dispatcher (backend calls
    serialized under its lock, like the sync server), and one write
    flushes the replies.  The pipelining win is paying the cross-thread
    handoff and write syscall per *burst* instead of per round trip,
    while the reader keeps decoding the next frames in parallel.

    Parameters
    ----------
    backend:
        Any execution backend (engine, pool, even a whole cluster).
    host, port:
        Bind address (``port=0``: ephemeral).
    own_backend:
        Close the backend when the server closes.
    dispatch_threads:
        Executor width for backend dispatch.  Batches from one connection
        are serial by construction and selects serialize on the
        dispatcher lock regardless; extra threads keep other connections'
        lock-free ops (``ping``) live while a batch runs.
    """

    def __init__(
        self,
        backend,
        host: str = DEFAULT_HOST,
        port: int = 0,
        own_backend: bool = False,
        dispatch_threads: int = 4,
    ):
        self.backend = backend
        self._dispatcher = BackendDispatcher(backend)
        self._own_backend = own_backend
        self._bind_host = host
        self._bind_port = port
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, dispatch_threads),
            thread_name_prefix="aio-dispatch",
        )
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._handler_tasks: set = set()
        self._transports: set = set()
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._address: Optional[tuple] = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------------
    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._address is None:
            raise TransportError("AsyncSocketServer has not been started")
        return self._address

    def start(self) -> "AsyncSocketServer":
        """Bind and serve on a background event loop; returns ``self``
        once the address is bound (startup failures re-raise here)."""
        if self._closed:
            raise TransportError("AsyncSocketServer is closed")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run_loop, daemon=True, name="aio-server"
            )
            self._thread.start()
            self._started.wait()
            if self._startup_error is not None:
                self._thread.join(timeout=1.0)
                self._thread = None
                error = self._startup_error
                self._startup_error = None
                raise TransportError(
                    f"could not bind {self._bind_host}:{self._bind_port}: "
                    f"{type(error).__name__}: {error}"
                ) from error
        return self

    def serve_forever(self) -> None:
        """Serve until :meth:`close` (or KeyboardInterrupt in the caller)."""
        self.start()
        while self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=0.2)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # loop already gone
                pass
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._executor.shutdown(wait=False)
        if self._own_backend:
            self.backend.close()

    def __enter__(self) -> "AsyncSocketServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- event loop ----------------------------------------------------------
    def _run_loop(self) -> None:
        try:
            asyncio.run(self._main())
        finally:
            self._started.set()  # unblock start() even on pre-bind crashes

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._handler_tasks: set = set()
        self._transports: set = set()
        try:
            server = await asyncio.start_server(
                self._handle_connection, self._bind_host, self._bind_port
            )
        except OSError as error:
            self._startup_error = error
            self._started.set()
            return
        self._address = server.sockets[0].getsockname()[:2]
        self._started.set()
        async with server:
            await self._stop.wait()
        # Graceful teardown without cancelling handler tasks (a cancelled
        # streams handler trips asyncio's done-callback logging on 3.11):
        # abort the live transports so every reader wakes with EOF, then
        # wait for the handlers to drain their in-flight frames and exit.
        for transport in list(self._transports):
            transport.abort()
        if self._handler_tasks:
            await asyncio.gather(*self._handler_tasks,
                                 return_exceptions=True)

    def _dispatch_batch(self, batch: list) -> Optional[bytes]:
        """Dispatch a burst of frames and encode their replies (runs on an
        executor thread, one hop for the whole burst).  ``None`` means an
        unencodable (oversized) reply — the connection must be dropped,
        like the sync server dropping it mid-conversation."""
        chunks = []
        for message in batch:
            reply = self._dispatcher.handle_message(message)
            try:
                chunks.append(encode_frame(reply))
            except TransportError:
                return None
        return b"".join(chunks)

    async def _consume_frames(self, queue, writer) -> None:
        """Per-connection consumer: drain whatever frames have queued into
        one micro-batch, dispatch them in one executor hop, flush their
        replies in one write.  Under a pipelining client the batch size
        adapts to the arrival rate; a request/response client simply gets
        batches of one.
        """
        loop = asyncio.get_running_loop()
        while True:
            message = await queue.get()
            if message is _EOF:
                return
            batch = [message]
            eof = False
            while len(batch) < DISPATCH_BATCH:
                try:
                    queued = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if queued is _EOF:
                    eof = True
                    break
                batch.append(queued)
            data = await loop.run_in_executor(
                self._executor, self._dispatch_batch, batch
            )
            if data is None:
                writer.transport.abort()
                return
            try:
                writer.write(data)
                await writer.drain()
            except (ConnectionError, OSError):
                return  # peer gone mid-write; the conversation is over
            if eof:
                return

    async def _handle_connection(self, reader, writer) -> None:
        handler = asyncio.current_task()
        if handler is not None:
            self._handler_tasks.add(handler)
        self._transports.add(writer.transport)
        queue: asyncio.Queue = asyncio.Queue(maxsize=QUEUE_DEPTH)
        consumer = asyncio.create_task(self._consume_frames(queue, writer))
        try:
            while not consumer.done():
                try:
                    header = await reader.readexactly(FRAME_HEADER_SIZE)
                    length = frame_length(header)
                    body = await reader.readexactly(length)
                    message = decode_payload(body)
                except (asyncio.IncompleteReadError, TransportError):
                    # Clean EOF, mid-frame EOF, or a corrupt stream: the
                    # conversation is over (matching the sync server).
                    break
                try:
                    queue.put_nowait(message)
                except asyncio.QueueFull:
                    # Backpressure path: block on the put, but never past
                    # the consumer's death — a dead consumer drains
                    # nothing, and a put awaited alone would wedge this
                    # handler (and server shutdown) forever.
                    put = asyncio.ensure_future(queue.put(message))
                    await asyncio.wait({put, consumer},
                                       return_when=asyncio.FIRST_COMPLETED)
                    if not put.done():
                        put.cancel()
                        break
        except (ConnectionError, OSError):
            pass
        finally:
            if not consumer.done():
                # Wake the consumer without cancelling it: in-flight
                # dispatches drain, then it sees EOF and exits.
                try:
                    queue.put_nowait(_EOF)
                except asyncio.QueueFull:
                    consumer.cancel()
            await asyncio.gather(consumer, return_exceptions=True)
            self._transports.discard(writer.transport)
            if handler is not None:
                self._handler_tasks.discard(handler)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


# ---------------------------------------------------------------------------
# Pipelined client
# ---------------------------------------------------------------------------

class _ReplyCollector:
    """Reply slots for one pipelined stream, completed as one unit.

    A stream of N frames waits on **one** event instead of N futures —
    per-reply synchronization is a slot write and a counter decrement, so
    the reader thread almost never wakes the sender (futures cost a
    condition-variable handshake per result, which on a single core is a
    measurable slice of a warm select's round trip).
    """

    __slots__ = ("slots", "failure", "done", "sent_times", "recv_times",
                 "_remaining", "_lock")

    def __init__(self, size: int, track_times: bool = False) -> None:
        self.slots: list = [None] * size
        self.failure: Optional[TransportError] = None
        self.done = threading.Event()
        # Per-slot send/receive stamps for tracing clients: the only
        # vantage point that sees the pipelined window wait
        # (``client_queue``) and the per-frame wire time.  ``None`` when
        # not tracing — the hot path pays nothing.
        self.sent_times: Optional[list] = [None] * size if track_times else None
        self.recv_times: Optional[list] = [None] * size if track_times else None
        self._remaining = size
        self._lock = threading.Lock()

    def mark_sent(self, index: int, stamp: float) -> None:
        if self.sent_times is not None:
            self.sent_times[index] = stamp

    def deliver(self, index: int, reply: dict) -> None:
        if self.recv_times is not None:
            self.recv_times[index] = time.perf_counter()
        self.slots[index] = reply
        with self._lock:
            self._remaining -= 1
            if self._remaining == 0:
                self.done.set()

    def fail(self, error: TransportError) -> None:
        with self._lock:
            if self.failure is None:
                self.failure = error
            self.done.set()


class _PipelinedConnection:
    """One physical socket multiplexing id-tagged frames.

    Senders tag each message with a connection-unique id; replies resolve
    their stream's :class:`_ReplyCollector` slot as the (possibly
    out-of-order) frames arrive on the background reader thread.  The
    first transport fault fails everything pending and poisons the
    connection — the owning backend then opens a fresh one.
    """

    #: Reader poll interval — how often the pending-reply deadline is
    #: checked while the socket is quiet (the timeout's granularity).
    POLL_SECONDS = 0.5

    def __init__(self, host: str, port: int, connect_timeout: float,
                 call_timeout: Optional[float]):
        self._sock = socket.create_connection((host, port),
                                              timeout=connect_timeout)
        # Blocking socket + a select() poll in the reader: the call
        # timeout applies only while frames are *pending* (a hung server
        # must surface as TransportError or failover never engages), so
        # an idle kept-alive connection is never poisoned by quiet time.
        self._sock.settimeout(None)
        self._call_timeout = call_timeout
        self._address = f"{host}:{port}"
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._pending: dict = {}
        self._next_id = 0
        self._waiting_since = time.monotonic()
        self._failure: Optional[TransportError] = None
        self._reader = threading.Thread(
            target=self._read_loop, daemon=True, name="aio-client-reader"
        )
        self._reader.start()

    @property
    def dead(self) -> bool:
        return self._failure is not None

    def stream_batch(
        self,
        messages: Sequence[dict],
        collector: _ReplyCollector,
        base_index: int,
        on_reply,
    ) -> None:
        """Send a burst of id-tagged frames in **one** write; replies land
        in ``collector.slots[base_index:]``.  Corking the burst is the
        client half of the pipelining win: one syscall (and one TCP
        segment train) carries the whole window.  ``on_reply`` fires once
        per frame outcome (reply or failure) — the sender's window gate.
        """
        with self._lock:
            if self._failure is not None:
                raise self._failure
            tagged = []
            for offset, message in enumerate(messages):
                frame_id = self._next_id
                self._next_id += 1
                body = dict(message)
                body["id"] = frame_id
                tagged.append((frame_id, body, base_index + offset))
        # Encode before registering: an unencodable (oversized) frame is a
        # *request*-shaped defect — it would fail identically on every
        # replica — so it resolves its own slot as a request error and
        # must not poison the shared connection or trigger failover.
        chunks = []
        sendable = []
        for frame_id, body, index in tagged:
            try:
                chunks.append(encode_frame(body))
            except TransportError as error:
                collector.deliver(index, {
                    "ok": False, "kind": "request",
                    "error": f"request not sendable: {error}",
                })
                on_reply()
                continue
            sendable.append((frame_id, index))
        if not sendable:
            return
        with self._lock:
            if self._failure is not None:
                raise self._failure
            if not self._pending:
                # The reply deadline runs from the moment the pipe went
                # from idle to waiting (and re-arms on every reply).
                self._waiting_since = time.monotonic()
            for frame_id, index in sendable:
                self._pending[frame_id] = (collector, index, on_reply)
        try:
            burst = b"".join(chunks)
            with self._send_lock:
                self._sock.sendall(burst)
            stamp = time.perf_counter()
            for _frame_id, index in sendable:
                collector.mark_sent(index, stamp)
        except (OSError, TransportError) as error:
            self._fail(error if isinstance(error, TransportError)
                       else TransportError(
                           f"socket to {self._address} failed mid-send: "
                           f"{type(error).__name__}: {error}"))

    def _read_loop(self) -> None:
        # Buffered counterpart of the corked writes: one recv slurps a
        # whole reply burst, then every complete frame in the buffer is
        # decoded and resolved before the next syscall.
        import select as select_module

        buffer = bytearray()
        try:
            while True:
                offset = 0
                while True:
                    if len(buffer) - offset < FRAME_HEADER_SIZE:
                        break
                    length = frame_length(
                        bytes(buffer[offset:offset + FRAME_HEADER_SIZE])
                    )
                    start = offset + FRAME_HEADER_SIZE
                    if len(buffer) - start < length:
                        break
                    reply = decode_payload(bytes(buffer[start:start + length]))
                    offset = start + length
                    with self._lock:
                        waiter = self._pending.pop(reply.get("id"), None)
                        self._waiting_since = time.monotonic()
                    if waiter is None:
                        continue  # stale id (e.g. raced with a failure)
                    collector, index, on_reply = waiter
                    collector.deliver(index, reply)
                    on_reply()
                del buffer[:offset]
                readable, _, _ = select_module.select(
                    [self._sock], [], [], self.POLL_SECONDS
                )
                if not readable:
                    with self._lock:
                        waiting = (bool(self._pending)
                                   and self._call_timeout is not None
                                   and time.monotonic() - self._waiting_since
                                   >= self._call_timeout)
                    if waiting:
                        raise TransportError(
                            f"server {self._address} did not reply within "
                            f"the {self._call_timeout:g}s call timeout"
                        )
                    continue  # idle (or still inside the deadline)
                chunk = self._sock.recv(1 << 20)
                if not chunk:
                    if buffer:
                        raise TransportError(
                            f"server {self._address} closed the connection "
                            "mid-frame"
                        )
                    raise TransportError(
                        f"server {self._address} closed the connection"
                    )
                buffer.extend(chunk)
        except ValueError as error:
            # select() on a socket closed under us (fd gone negative).
            self._fail(TransportError(
                f"socket to {self._address} closed during read: {error}"
            ))
        except (OSError, TransportError) as error:
            self._fail(error if isinstance(error, TransportError)
                       else TransportError(
                           f"socket to {self._address} failed: "
                           f"{type(error).__name__}: {error}"))

    def _fail(self, error: TransportError) -> None:
        """Poison the connection: everything pending (and every later
        call) fails with ``error``."""
        with self._lock:
            if self._failure is None:
                self._failure = error
            pending = list(self._pending.values())
            self._pending.clear()
        for collector, _index, on_reply in pending:
            collector.fail(error)
            on_reply()  # release the sender's window slot
        try:
            self._sock.close()
        except OSError:
            pass

    def close(self, error: Optional[TransportError] = None) -> None:
        self._fail(error or PipelineCancelled(
            f"pipelined connection to {self._address} closed by the client"
        ))
        if self._reader is not threading.current_thread():
            self._reader.join(timeout=2.0)


class AsyncRemoteBackend(BaseBackend):
    """The pipelined socket client: one connection, many frames in flight.

    A drop-in :class:`~repro.serve.backend.ExecutionBackend` — cluster
    member, CLI backend, bench subject — whose ``select_many`` streams
    each request as its own id-tagged frame (at most ``window`` awaiting
    replies) instead of one blocking round trip per request or one giant
    batch frame.  Works against both the asyncio server (out-of-order
    completion, full overlap) and the sync server (in-order completion,
    still pipelined through the socket buffer).

    Concurrent callers multiplex safely over the single socket: ids are
    connection-unique, and each call windows itself independently.

    Failure semantics mirror :class:`~repro.serve.transport
    .RemoteBackend`: transport faults raise :class:`TransportError` after
    one transparent retry on a previously-good connection (selection is
    pure and cached, so replays are idempotent); :meth:`close` cancels
    in-flight frames with :class:`PipelineCancelled`, which is never
    retried.
    """

    kind = "pipelined"

    DEFAULT_CALL_TIMEOUT = 120.0

    def __init__(
        self,
        address: "str | tuple",
        connect_timeout: float = 5.0,
        call_timeout: Optional[float] = DEFAULT_CALL_TIMEOUT,
        window: int = DEFAULT_WINDOW,
        trace: bool = False,
    ):
        super().__init__()
        self.host, self.port = parse_address(address)
        self.connect_timeout = connect_timeout
        self.call_timeout = call_timeout
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.trace = trace
        #: The most recent completed trace (``{"id", "stages"}``) when
        #: ``trace=True``; per-stage histograms accumulate in
        #: ``self.metrics`` under ``trace.<stage>``.
        self.last_trace: Optional[dict] = None
        self._conn: Optional[_PipelinedConnection] = None
        self._conn_lock = threading.Lock()

    # -- connection ----------------------------------------------------------
    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _connection(self) -> tuple:
        """``(connection, fresh)`` — reuse the live one or dial anew."""
        with self._conn_lock:
            if self._closed:
                # Checked under the lock so no call racing close() can
                # re-dial and leak a socket + reader thread.
                raise BackendError(f"{type(self).__name__} is closed")
            if self._conn is not None and not self._conn.dead:
                return self._conn, False
            try:
                self._conn = _PipelinedConnection(
                    self.host, self.port,
                    self.connect_timeout, self.call_timeout,
                )
            except OSError as error:
                raise TransportError(
                    f"could not connect to {self.address}: "
                    f"{type(error).__name__}: {error}"
                ) from error
            return self._conn, True

    def _drop_connection(self, observed: _PipelinedConnection) -> None:
        """Drop ``observed`` — and only it.  A slow failing caller must
        not tear down the *fresh* connection a concurrent caller has
        already re-dialed and is streaming on."""
        with self._conn_lock:
            if self._conn is not observed:
                return
            self._conn = None
        observed.close(TransportError(
            f"connection to {self.address} dropped by the client"
        ))

    # -- reply mapping -------------------------------------------------------
    def _entry(self, reply: dict):
        if reply.get("ok"):
            return SelectionResponse.from_wire(reply["response"])
        return reply_error(reply)  # the shared sync/pipelined mapping

    # -- tracing -------------------------------------------------------------
    def _traced(self, message: dict) -> dict:
        if not self.trace:
            return message
        return {**message, TRACE_KEY: {"id": resolve_trace_id("pipe")}}

    def _record_traces(self, replies: Sequence, timings) -> None:
        """Derive the client-only stages for every traced reply:
        ``client_queue`` (stream start → frame actually sent, i.e. the
        window wait) and ``transport`` (frame round trip minus the
        server's wall)."""
        if timings is None:
            return
        sent_times, recv_times, stream_start = timings
        last = None
        for index, reply in enumerate(replies):
            if not isinstance(reply, dict):
                continue
            carried = reply.get(TRACE_KEY)
            if not isinstance(carried, dict):
                continue
            stages = list(carried.get("stages", ()))
            sent, received = sent_times[index], recv_times[index]
            if sent is not None:
                stages.append(make_stage("client_queue", sent - stream_start))
                if received is not None:
                    stages.append(make_stage(
                        "transport",
                        (received - sent) - stage_seconds(carried, "server"),
                    ))
            trace = {"id": carried.get("id"), "stages": stages}
            for entry in stages:
                self.metrics.histogram(
                    f"trace.{entry['stage']}"
                ).observe(entry["seconds"])
            last = trace
        if last is not None:
            self.last_trace = last

    # -- pipelining ----------------------------------------------------------
    def _stream(self, messages: Sequence[dict],
                track_times: bool = False) -> tuple:
        """Send ``messages`` windowed over one connection; returns
        ``(replies, timings)`` with replies in message order and
        ``timings`` a ``(sent_times, recv_times, stream_start)`` triple
        when ``track_times`` (else ``None``).  Raises
        :class:`TransportError` (after one retry on a reused connection)
        when the transport dies mid-stream.
        """
        if not messages:
            return [], None  # a zero-size collector would never complete
        attempts = 2
        while True:
            attempts -= 1
            conn, fresh = self._connection()
            collector = _ReplyCollector(len(messages),
                                        track_times=track_times)
            stream_start = time.perf_counter()
            gate = threading.BoundedSemaphore(self.window)
            try:
                position = 0
                while position < len(messages):
                    # The gate bounds in-flight frames; a failed frame
                    # still releases its slot, so a dying connection
                    # cannot deadlock the sender.  Block until half a
                    # window of permits is back before sending again —
                    # greedily sending on every freed permit degrades the
                    # stream into one-frame dribs, and the per-frame
                    # costs pipelining amortizes come straight back.
                    remaining = len(messages) - position
                    target = min(remaining, max(1, self.window // 2))
                    acquired = 0
                    while acquired < target:
                        gate.acquire()
                        acquired += 1
                        if collector.failure is not None:
                            raise collector.failure
                    while (acquired < min(remaining, self.window)
                           and gate.acquire(blocking=False)):
                        acquired += 1
                    conn.stream_batch(
                        messages[position:position + acquired],
                        collector, position, gate.release,
                    )
                    position += acquired
                collector.done.wait()
                if collector.failure is not None:
                    raise collector.failure
                timings = ((collector.sent_times, collector.recv_times,
                            stream_start) if track_times else None)
                return collector.slots, timings
            except PipelineCancelled:
                raise  # the caller closed us: never retry
            except (OSError, TransportError) as error:
                self._drop_connection(conn)
                if fresh or attempts <= 0 or self._closed:
                    if isinstance(error, TransportError):
                        raise
                    raise TransportError(
                        f"socket to {self.address} failed: "
                        f"{type(error).__name__}: {error}"
                    ) from error
                # The kept connection may simply have gone stale (server
                # restarted between calls): replay once on a fresh one.

    # -- protocol ------------------------------------------------------------
    def select_many(
        self,
        requests: Sequence[SelectionRequest],
        raise_on_error: bool = True,
    ) -> list:
        self._require_open()
        start = time.perf_counter()
        messages = [self._traced({"op": "select", "request": request.to_wire()})
                    for request in requests]
        try:
            replies, timings = self._stream(messages,
                                            track_times=self.trace)
        except BackendError as error:
            # Every request of the batch went unserved: the stats envelope
            # counts them all, so errors/qps stay honest under failure.
            self._account([error] * len(requests),
                          time.perf_counter() - start)
            raise
        self._record_traces(replies, timings)
        entries = [self._entry(reply) for reply in replies]
        self._account(entries, time.perf_counter() - start)
        return self._finish(entries, raise_on_error)

    def select(self, request: SelectionRequest) -> SelectionResponse:
        self._require_open()
        start = time.perf_counter()
        try:
            (reply,), timings = self._stream(
                [self._traced({"op": "select", "request": request.to_wire()})],
                track_times=self.trace,
            )
            self._record_traces([reply], timings)
            entry = self._entry(reply)
            if isinstance(entry, Exception):
                raise entry
        except Exception as error:
            self._account([error], time.perf_counter() - start)
            raise
        self._account([entry], time.perf_counter() - start)
        return entry

    def ping(self) -> bool:
        """Liveness probe (raises :class:`TransportError` when unreachable)."""
        (reply,), _ = self._stream([{"op": "ping"}])
        return bool(reply.get("ok"))

    def server_metrics(self) -> dict:
        """The server-side telemetry snapshot (``metrics`` op):
        ``{"dispatcher": ..., "backend": ...}`` registry snapshots."""
        (reply,), _ = self._stream([{"op": "metrics"}])
        if not reply.get("ok"):
            raise reply_error(reply)
        return reply["metrics"]

    def stats(self) -> dict:
        payload = super().stats()
        payload["address"] = self.address
        payload["window"] = self.window
        try:
            (reply,), _ = self._stream([{"op": "stats"}])
            payload["server"] = reply["stats"]
        except (BackendError, KeyError):
            payload["server"] = None
        return payload

    def close(self) -> None:
        """Close the backend; in-flight frames fail with
        :class:`PipelineCancelled` (cancellation, not a retry trigger)."""
        with self._conn_lock:
            self._closed = True  # before the pop: no re-dial window
            conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()
        super().close()
