"""ClusterRouter: a consistent-hash ring of member backends.

The multi-host leg of the serving stack.  A :class:`ClusterRouter` owns N
member :class:`~repro.serve.backend.ExecutionBackend`\\ s — remote socket
servers, local pools, bare engines, or nested clusters — and routes every
request by a **consistent-hash ring** keyed on ``(dataset,
request-hash)``:

* each member contributes ``vnodes`` virtual points to the ring (hashed
  from its *name*, so the placement is stable across processes and
  restarts — the same request always lands on the same member, which is
  what keeps the members' selection LRUs sharded and warm);
* a request's key is a stable content hash of its wire form, prefixed by
  its dataset, so affinity follows content, not arrival order;
* the first ``r`` *distinct* members clockwise from the key are its
  replica set, where ``r`` is the per-dataset replication factor
  (``dataset_replication`` overrides the default ``replication``);
* a pluggable :class:`ReplicaPolicy` picks which live replica **serves
  the read** — ``"primary"`` always reads from the first replica in ring
  order (maximally warm LRUs, replicas are pure failover standbys),
  ``"round_robin"`` rotates reads across the replica set (every replica
  earns its keep under load), ``"hash"`` routes each request to the
  replica its content hash names (every replica earns its keep *and*
  each request's cache entry lives on exactly one replica),
  ``"least_inflight"`` reads from the replica with the fewest requests
  currently in flight (routes around slow members before they fail) —
  driven by the per-member traffic counters the router keeps anyway;
* whichever replica the policy picks first, a member that raises a
  :class:`~repro.serve.errors.BackendError` (dead socket, dead pool
  worker, exhausted nested cluster) is marked suspect and the request
  **fails over** to the next replica in the policy's order.
  Request-level errors (unknown target, degenerate query) never fail
  over — they would fail identically everywhere.

The router is itself an :class:`ExecutionBackend`, so topologies nest: a
cluster of pools, a cluster whose members are remote clusters, ...
``select_many`` drains each member's share concurrently (one thread per
member group), which is where multi-host aggregate QPS comes from.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Optional, Sequence

from repro.api.cache import stable_hash64
from repro.api.request import SelectionRequest, SelectionResponse
from repro.serve.backend import BaseBackend
from repro.serve.errors import BackendError, ClusterError, RequestError

DEFAULT_VNODES = 64


def request_key(request: SelectionRequest) -> bytes:
    """The ``(dataset, request-content)`` ring key of one request.

    The key is the full wire form (stable across processes — never
    ``hash()``, which is salted per interpreter) prefixed by the dataset,
    so per-dataset replication reads naturally off the key; the ring hashes
    it with one :func:`stable_hash64` pass.
    """
    return f"{request.dataset or ''}\x1f{request.to_json()}".encode("utf-8")


@dataclass
class _Member:
    """One cluster member plus its routing accounting."""

    name: str
    backend: Any
    routed: int = 0
    served: int = 0
    errors: int = 0
    inflight: int = 0
    dead: bool = False
    last_error: Optional[str] = None


# ---------------------------------------------------------------------------
# Replica policies (who serves the read)
# ---------------------------------------------------------------------------

class ReplicaPolicy:
    """Orders a request's replica set: the first member serves the read,
    the rest are its failover chain (quarantined members are always
    deprioritized afterwards by the router, whatever the policy says).

    Policies are consulted per request and may keep state (the round-robin
    cursor); they must be thread-safe, because ``select_many`` batches are
    grouped — and concurrent callers route — from multiple threads.
    """

    name = "policy"

    def order(self, indices: Sequence[int],
              members: Sequence[_Member]) -> list:
        """A permutation of ``indices`` (ring order in, serve order out)."""
        raise NotImplementedError

    def order_at(self, point: int, indices: Sequence[int],
                 members: Sequence[_Member]) -> list:
        """Like :meth:`order`, but with the request's ring point available
        — content-affine policies (``hash``) key on it.  The default
        delegates to :meth:`order`, so point-blind policies (including
        third-party two-argument subclasses) need not know it exists."""
        return self.order(indices, members)

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class PrimaryPolicy(ReplicaPolicy):
    """Always read from the first replica in ring order — the pre-policy
    behavior: maximal LRU affinity, replicas are failover-only standbys."""

    name = "primary"

    def order(self, indices, members):
        return list(indices)


class RoundRobinPolicy(ReplicaPolicy):
    """Rotate reads across the replica set.

    One cursor *per replica set* (not one global cursor: a global cursor
    aliases with periodic workloads — two alternating requests whose ring
    orders also alternate would land every read on one member).  Each set
    rotates through its own replicas, so repeats of the same request
    spread evenly, at the cost of spreading that request's cache entry
    across its replicas.
    """

    name = "round_robin"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cursors: dict = {}

    def order(self, indices, members):
        indices = list(indices)
        key = tuple(indices)
        with self._lock:
            turn = self._cursors.get(key, 0)
            self._cursors[key] = turn + 1
        turn %= len(indices)
        return indices[turn:] + indices[:turn]


class HashPolicy(ReplicaPolicy):
    """Cache-affinity reads: the request's own ring point picks which
    replica serves it.

    ``round_robin`` spreads load but duplicates every cache entry across
    the replica set — each replica takes cold misses for the whole key
    space, which is why it *loses* to ``primary`` on cache-bound
    workloads (209 vs 409 QPS in ``BENCH_async_qps.json``).  Hashing
    *within* the replica set keeps the spread while sharding the key
    space: the same request always reads from the same replica (warm
    LRU), different requests split ~evenly across replicas (the ring
    point is uniform), and failover order is the rotation that starts at
    the owner, so a dead owner's shard falls to its successor.
    """

    name = "hash"

    def order(self, indices, members):
        return list(indices)  # no point, no preference: ring order

    def order_at(self, point, indices, members):
        indices = list(indices)
        turn = point % len(indices)
        return indices[turn:] + indices[:turn]


class LeastInflightPolicy(ReplicaPolicy):
    """Read from the replica with the fewest requests in flight.

    Uses the router's live per-member inflight gauges, so a slow or
    saturated member sheds read traffic to its idle replicas *before* it
    degrades into a failover.  Ties keep ring order, preserving cache
    affinity when the ring is evenly loaded.
    """

    name = "least_inflight"

    def order(self, indices, members):
        ranked = sorted(
            range(len(indices)),
            key=lambda position: (members[indices[position]].inflight,
                                  position),
        )
        return [indices[position] for position in ranked]


_REPLICA_POLICIES = {
    PrimaryPolicy.name: PrimaryPolicy,
    RoundRobinPolicy.name: RoundRobinPolicy,
    HashPolicy.name: HashPolicy,
    LeastInflightPolicy.name: LeastInflightPolicy,
}


def replica_policy_names() -> list:
    """Registered policy names, sorted (the CLI listing is deterministic)."""
    return sorted(_REPLICA_POLICIES)


def make_replica_policy(policy: "str | ReplicaPolicy") -> ReplicaPolicy:
    """Resolve a policy name (or pass an instance through)."""
    if isinstance(policy, ReplicaPolicy):
        return policy
    try:
        return _REPLICA_POLICIES[policy]()
    except KeyError:
        raise ValueError(
            f"unknown replica policy {policy!r} "
            f"(choose from {replica_policy_names()})"
        ) from None


class ClusterRouter(BaseBackend):
    """Consistent-hash routing (with replication and failover) over member
    backends.

    >>> router = ClusterRouter([("a", backend_a), ("b", backend_b)],
    ...                        replication=2)                # doctest: +SKIP
    >>> router.select_many(requests)                         # doctest: +SKIP

    Parameters
    ----------
    members:
        The member backends, as ``(name, backend)`` pairs or bare backends
        (then named ``member-0``, ``member-1``, ... in order).  Names place
        the vnodes, so keep them stable across restarts.
    replication:
        Default replica-set size per request (clamped to the member
        count).  ``1`` disables failover.
    dataset_replication:
        Per-dataset overrides, ``{dataset_name: replicas}`` — hot datasets
        can replicate wider than the default.
    replica_policy:
        Which live replica serves each read: ``"primary"`` (default —
        ring order, replicas are failover-only), ``"round_robin"``,
        ``"hash"`` (cache-affine load spread), ``"least_inflight"``, or
        a :class:`ReplicaPolicy` instance.
        Failover-on-:class:`BackendError` semantics are identical under
        every policy; only the first replica *tried* changes.
    vnodes:
        Virtual points per member on the ring (more = smoother balance).
    own_members:
        Close the members when the router closes.
    """

    kind = "cluster"

    def __init__(
        self,
        members: Sequence,
        replication: int = 2,
        dataset_replication: Optional[dict] = None,
        replica_policy: "str | ReplicaPolicy" = "primary",
        vnodes: int = DEFAULT_VNODES,
        own_members: bool = True,
    ):
        super().__init__()
        if not members:
            raise ValueError("a cluster needs at least one member")
        if replication < 1:
            raise ValueError(f"replication must be >= 1, got {replication}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self._members: list[_Member] = []
        for index, entry in enumerate(members):
            if isinstance(entry, tuple):
                name, backend = entry
            else:
                name, backend = f"member-{index}", entry
            self._members.append(_Member(str(name), backend))
        names = [member.name for member in self._members]
        if len(set(names)) != len(names):
            raise ValueError(f"member names must be unique, got {names}")
        self.replication = replication
        self.dataset_replication = dict(dataset_replication or {})
        self.replica_policy = make_replica_policy(replica_policy)
        self.vnodes = vnodes
        self._own_members = own_members
        #: Trace of the most recently served ``select`` — delegated from
        #: the member that answered, so a front door (the HTTP gateway)
        #: merging nested client stages sees ``transport`` /
        #: ``client_queue`` timings through the router exactly as it
        #: would fronting the member directly.  Last-write-wins under
        #: concurrency, like every tracing client's ``last_trace``;
        #: consumers match on the trace id.
        self.last_trace: Optional[dict] = None
        self._failovers = 0
        self._dataset_traffic: Counter = Counter()
        # Guards the failure bookkeeping (_mark_failed / _failovers), which
        # member drain threads update concurrently.
        self._suspect_lock = threading.Lock()
        ring = []
        for index, member in enumerate(self._members):
            for vnode in range(vnodes):
                point = stable_hash64(f"{member.name}#{vnode}".encode("utf-8"))
                ring.append((point, index))
        ring.sort()
        self._ring_points = [point for point, _ in ring]
        self._ring_members = [index for _, index in ring]

    # -- ring ----------------------------------------------------------------
    @property
    def member_names(self) -> list[str]:
        return [member.name for member in self._members]

    def _effective_replication(self, dataset: Optional[str]) -> int:
        r = self.dataset_replication.get(dataset, self.replication)
        return max(1, min(int(r), len(self._members)))

    def replicas_for(self, request: SelectionRequest) -> list[str]:
        """Member names of the request's replica set, ring order (the first
        is the primary while every member is live)."""
        return [self._members[i].name for i in self._replica_indices(request)]

    def _replica_indices(
        self, request: SelectionRequest, point: Optional[int] = None,
    ) -> list[int]:
        wanted = self._effective_replication(request.dataset)
        if point is None:
            point = stable_hash64(request_key(request))
        start = bisect.bisect(self._ring_points, point)
        chosen: list[int] = []
        n = len(self._ring_points)
        for step in range(n):
            index = self._ring_members[(start + step) % n]
            if index not in chosen:
                chosen.append(index)
                if len(chosen) == wanted:
                    break
        return chosen

    def _attempt_order(self, indices: Sequence[int],
                       point: Optional[int] = None) -> list[int]:
        """The serve order of a replica set: the replica policy picks who
        reads, then live replicas come before suspects (a recovered member
        gets another chance only once every live replica has failed too)."""
        if point is not None:
            ordered = self.replica_policy.order_at(point, indices,
                                                   self._members)
        else:
            ordered = self.replica_policy.order(indices, self._members)
        live = [i for i in ordered if not self._members[i].dead]
        dead = [i for i in ordered if self._members[i].dead]
        return live + dead

    def _count_traffic(self, requests: Sequence[SelectionRequest]) -> None:
        """Per-dataset traffic counters (``None`` = the unnamed dataset).

        This is the observability feed for replication planning: a hot
        dataset shows up here long before its members saturate, so an
        operator (or a future auto-policy) can widen its
        ``dataset_replication`` entry.
        """
        with self._suspect_lock:
            self._dataset_traffic.update(
                request.dataset for request in requests
            )

    def _begin_inflight(self, index: int, count: int = 1) -> None:
        with self._suspect_lock:
            self._members[index].inflight += count

    def _end_inflight(self, index: int, count: int = 1) -> None:
        with self._suspect_lock:
            self._members[index].inflight -= count

    def _mark_failed(self, index: int, error: BaseException) -> None:
        with self._suspect_lock:
            member = self._members[index]
            member.dead = True
            member.errors += 1
            member.last_error = f"{type(error).__name__}: {error}"

    def revive(self) -> None:
        """Forget suspicions; every member routes again (e.g. after an
        operator restarted a host)."""
        with self._suspect_lock:
            for member in self._members:
                member.dead = False

    # -- serving -------------------------------------------------------------
    def _serve_with_failover(self, request: SelectionRequest,
                             prior_failure: bool = False,
                             skip_dead: bool = False,
                             point: Optional[int] = None):
        """One response, trying each replica in order.  Returns the
        response; raises request-level errors as-is and
        :class:`ClusterError` when every replica fails at the member
        level.  ``prior_failure`` marks a request whose first attempt
        already failed elsewhere (a batch drain), so a success here counts
        as a failover even when the first replica tried serves.
        ``skip_dead`` drops quarantined replicas instead of trying them
        last — the batch failover pass uses it so a dead member's connect
        latency is paid once per batch, not once per request."""
        if point is None:
            point = stable_hash64(request_key(request))
        indices = self._replica_indices(request, point)
        order = self._attempt_order(indices, point)
        if skip_dead:
            order = [i for i in order if not self._members[i].dead]
            if not order:
                raise ClusterError(
                    f"all {len(indices)} replica(s) of this request are "
                    "marked dead (revive() readmits them)"
                )
        attempts = []
        for index in order:
            member = self._members[index]
            with self._suspect_lock:
                member.routed += 1
                member.inflight += 1
            try:
                response = member.backend.select(request)
            except BackendError as error:
                self._mark_failed(index, error)
                attempts.append(f"{member.name}: {member.last_error}")
                continue
            finally:
                self._end_inflight(index)
            with self._suspect_lock:
                member.dead = False  # served fine: clear any stale suspicion
                member.served += 1
                if attempts or prior_failure:
                    # This request was actually re-served after a member
                    # failure — that, and only that, is a failover.
                    self._failovers += 1
            self.last_trace = getattr(member.backend, "last_trace", None)
            return response
        raise ClusterError(
            f"all {len(indices)} replica(s) failed for this request: "
            + "; ".join(attempts)
        )

    def select(self, request: SelectionRequest) -> SelectionResponse:
        self._require_open()
        self._count_traffic([request])
        start = time.perf_counter()
        try:
            response = self._serve_with_failover(request)
        except Exception as error:
            self._account([error], time.perf_counter() - start)
            raise
        self._account([response], time.perf_counter() - start)
        return response

    def _drain_group(self, index: int, numbered: list) -> list:
        """Serve one member's share.  Returns ``(position, entry)`` pairs;
        member-level failures are left as :class:`BackendError` entries for
        the caller to fail over *after* every drain thread has joined — a
        drain thread must never call another member's backend, whose own
        thread may be mid-conversation on the same socket.

        Member failure shows up two ways: the whole ``select_many`` call
        raises :class:`BackendError`, or — when the member is itself a
        router serving with ``raise_on_error=False`` — individual entries
        *are* ``BackendError`` instances.
        """
        member = self._members[index]
        requests = [request for _, request in numbered]
        with self._suspect_lock:
            member.routed += len(requests)
            member.inflight += len(requests)
        try:
            entries = member.backend.select_many(requests, raise_on_error=False)
        except BackendError as error:
            self._mark_failed(index, error)
            entries = [error] * len(requests)
        else:
            backend_errors = [e for e in entries
                              if isinstance(e, BackendError)]
            served = sum(
                1 for e in entries if isinstance(e, SelectionResponse)
            )
            if backend_errors:
                # A nested router reports member-level failure as entries
                # rather than raising; that still means this member could
                # not serve — suspect it, don't bless it.
                self._mark_failed(index, backend_errors[0])
                with self._suspect_lock:
                    member.served += served
            else:
                with self._suspect_lock:
                    member.dead = False
                    member.served += served
        finally:
            self._end_inflight(index, len(requests))
        return [(position, entry)
                for (position, _), entry in zip(numbered, entries)]

    def select_many(
        self,
        requests: Sequence[SelectionRequest],
        raise_on_error: bool = True,
    ) -> list:
        self._require_open()
        self._count_traffic(requests)
        start = time.perf_counter()
        # One serialization + hash per request, reused by the failover pass.
        points = [stable_hash64(request_key(request)) for request in requests]
        groups: dict[int, list] = {}
        # Planned assignments count as provisional in-flight load while the
        # batch is being grouped — otherwise a load-aware policy (least
        # inflight) would see every gauge at its pre-batch value and route
        # the whole batch as if it were the first request.
        planned: dict[int, int] = {}
        for position, request in enumerate(requests):
            indices = self._attempt_order(
                self._replica_indices(request, points[position]),
                points[position],
            )
            target = indices[0]
            groups.setdefault(target, []).append((position, request))
            planned[target] = planned.get(target, 0) + 1
            self._begin_inflight(target)
        for target, count in planned.items():
            self._end_inflight(target, count)  # the drains re-account it
        entries: list = [None] * len(requests)
        if len(groups) <= 1:
            drained = [self._drain_group(index, numbered)
                       for index, numbered in groups.items()]
        else:
            # One thread per member group: members are separate processes
            # (or hosts), so their shares drain in parallel — this is the
            # aggregate-QPS story of the cluster benchmark.
            with ThreadPoolExecutor(max_workers=len(groups)) as executor:
                drained = list(executor.map(
                    lambda item: self._drain_group(*item), groups.items()
                ))
        for group in drained:
            for position, entry in group:
                entries[position] = entry
        # Failover pass, sequential by construction: the drain threads are
        # all joined, so the replica chains are free to serve retries.
        for position, entry in enumerate(entries):
            if isinstance(entry, BackendError):
                try:
                    entries[position] = self._serve_with_failover(
                        requests[position], prior_failure=True,
                        skip_dead=True, point=points[position],
                    )
                except (BackendError, RequestError) as fail:
                    # Typed serving failures (ClusterError: every replica
                    # failed; RequestError: fails on every replica) fill
                    # the request's slot for the raise_on_error contract.
                    entries[position] = fail
                except Exception as fail:
                    # Request-level failures from in-process members keep
                    # their original type (ValueError, KeyError, ...) so
                    # raise_on_error=True re-raises exactly what a bare
                    # engine would have raised.
                    entries[position] = fail
        self._account(entries, time.perf_counter() - start)
        return self._finish(entries, raise_on_error)

    # -- introspection / lifecycle ------------------------------------------
    def stats(self) -> dict:
        payload = super().stats()
        with self._suspect_lock:  # _count_traffic mutates concurrently
            traffic = dict(self._dataset_traffic)
        payload.update({
            "replication": self.replication,
            "dataset_replication": dict(self.dataset_replication),
            "replica_policy": self.replica_policy.name,
            "vnodes": self.vnodes,
            "failovers": self._failovers,
            # None keys (the unnamed dataset) are JSON-hostile: label them.
            "datasets": {
                (dataset if dataset is not None else ""): count
                for dataset, count in sorted(
                    traffic.items(), key=lambda kv: str(kv[0])
                )
            },
            "members": [
                {
                    "name": member.name,
                    "routed": member.routed,
                    "served": member.served,
                    "errors": member.errors,
                    "inflight": member.inflight,
                    "dead": member.dead,
                    "last_error": member.last_error,
                }
                for member in self._members
            ],
        })
        return payload

    def close(self) -> None:
        if self._own_members:
            for member in self._members:
                try:
                    member.backend.close()
                except (BackendError, OSError):
                    pass  # a dead member cannot refuse to be closed
        super().close()

    def __repr__(self) -> str:
        return (f"ClusterRouter(members={self.member_names}, "
                f"replication={self.replication}, "
                f"replica_policy={self.replica_policy.name!r})")
