"""Error taxonomy of the serving stack.

Every serving failure is one of two kinds, and the distinction is what the
:class:`~repro.serve.cluster.ClusterRouter`'s failover policy keys on:

* :class:`BackendError` — the *backend* (or one cluster member) is unusable:
  a pool whose worker died, a socket that refused or dropped the
  connection, a server that reported an internal fault.  Retrying the same
  request on a **replica** can succeed, so the cluster router fails over.
* :class:`RequestError` — the *request* itself failed (unknown target
  column, degenerate query state, ...).  It would fail identically on every
  replica, so it is surfaced to the caller immediately and never retried.

The concrete subclasses live here — one flat module with no serving
imports — so :mod:`repro.serve.pool`, :mod:`repro.serve.backend`,
:mod:`repro.serve.transport`, and :mod:`repro.serve.cluster` can all share
the taxonomy without import cycles.  ``PoolError`` and ``PoolRequestError``
keep their historical names (and re-exports from :mod:`repro.serve.pool`)
but are re-layered onto the shared bases.
"""

from __future__ import annotations

from typing import Optional


class BackendError(RuntimeError):
    """A serving backend is unusable; a replica may still serve the request."""


class RequestError(RuntimeError):
    """A request failed on its own terms; every replica would refuse it."""


# ---------------------------------------------------------------------------
# Pool
# ---------------------------------------------------------------------------

class PoolError(BackendError):
    """The pool is unusable (failed start, closed, or a worker died)."""


class PoolWorkerDied(PoolError):
    """A pool worker process died while serving.

    Carries the worker id, the process exit code, and — when the worker
    could report it before exiting — the worker-side traceback.  A hard
    kill (SIGKILL, OOM) leaves no traceback; the exit code is then the
    only evidence.
    """

    def __init__(
        self,
        worker: int,
        exitcode: Optional[int] = None,
        traceback: Optional[str] = None,
    ):
        detail = (f"\n--- worker {worker} traceback ---\n{traceback.rstrip()}"
                  if traceback else
                  " (no traceback: the process died without reporting)")
        super().__init__(
            f"pool worker {worker} died (exit code {exitcode})"
            f"{detail}"
        )
        self.worker = worker
        self.exitcode = exitcode
        self.traceback = traceback


class PoolRequestError(RequestError):
    """A request failed inside a pool worker; carries the worker-side text."""

    def __init__(self, index: int, worker: int, message: str) -> None:
        super().__init__(
            f"request #{index} failed in pool worker {worker}: {message}"
        )
        self.index = index
        self.worker = worker
        self.worker_message = message


# ---------------------------------------------------------------------------
# Transport
# ---------------------------------------------------------------------------

class TransportError(BackendError):
    """The socket transport failed (connect, framing, or a dropped peer)."""


class PipelineCancelled(TransportError):
    """The pipelined client was closed with frames still in flight.

    Raised by every in-flight future of an
    :class:`~repro.serve.aio.AsyncRemoteBackend` whose ``close()`` ran
    before the server replied.  A :class:`TransportError` (and therefore a
    :class:`BackendError`), but deliberately distinct: cancellation is the
    *caller's* doing, so the client never auto-retries it the way it
    retries a stale connection.
    """


class RemoteServerError(BackendError):
    """The remote server reported a backend-level fault of its own."""


class RemoteRequestError(RequestError):
    """The remote server rejected the request; carries the server-side text."""


# ---------------------------------------------------------------------------
# Cluster
# ---------------------------------------------------------------------------

class ClusterError(BackendError):
    """No replica of a cluster could serve (every member failed over)."""
