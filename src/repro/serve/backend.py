"""One ExecutionBackend protocol over every serving path.

Before this module there were three divergent ways to serve a
:class:`~repro.api.SelectionRequest` — ``Workspace.select`` in process,
``EnginePool.select_many`` with its own routing and error handling, and the
CLI's pooled-vs-single fork.  They are now implementations of a single
four-method protocol:

* :meth:`ExecutionBackend.select` — serve one request;
* :meth:`ExecutionBackend.select_many` — serve a batch in request order,
  returning :class:`~repro.api.SelectionResponse` entries (or, with
  ``raise_on_error=False``, the per-request exception in that slot);
* :meth:`ExecutionBackend.stats` — a JSON-serializable accounting snapshot
  with a shared core (``backend``/``served``/``errors``/``seconds``/
  ``qps``) plus backend-specific detail;
* :meth:`ExecutionBackend.close` — release processes/sockets/engines.

Implementations: :class:`InProcessBackend` (an :class:`~repro.api.Engine`
or :class:`~repro.api.Workspace` in this process), :class:`PoolBackend`
(an :class:`~repro.serve.EnginePool` of warm-start worker processes),
:class:`~repro.serve.transport.RemoteBackend` (a length-prefixed JSON
socket to another host), and :class:`~repro.serve.cluster.ClusterRouter`
(a consistent-hash ring of member backends).  Because the router is itself
a backend, topologies nest: a cluster of pools of engines, a cluster of
remote clusters, ...

Error contract (see :mod:`repro.serve.errors`): per-request failures are
:class:`~repro.serve.errors.RequestError`-like and identical on every
replica; :class:`~repro.serve.errors.BackendError` means *this backend* is
unusable and a replica may still serve.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional, Protocol, Sequence, runtime_checkable

from repro.api.artifacts import _codes_fingerprint
from repro.api.engine import Engine
from repro.api.request import SelectionRequest, SelectionResponse
from repro.api.store import StoreError
from repro.api.workspace import Workspace
from repro.obs import MetricsRegistry
from repro.serve.errors import BackendError
from repro.serve.pool import EnginePool


@runtime_checkable
class ExecutionBackend(Protocol):
    """The structural protocol every serving backend satisfies."""

    def select(self, request: SelectionRequest) -> SelectionResponse:
        """Serve one request (raises on failure)."""
        ...

    def select_many(
        self,
        requests: Sequence[SelectionRequest],
        raise_on_error: bool = True,
    ) -> list:
        """Serve a batch; entries are responses (or exceptions when
        ``raise_on_error=False``), in request order."""
        ...

    def stats(self) -> dict:
        """JSON-serializable accounting (shared core + backend detail)."""
        ...

    def close(self) -> None:
        """Release the backend's resources (idempotent)."""
        ...


def core_stats(kind: str, served: int, errors: int, seconds: float) -> dict:
    """The stats envelope every backend shares (benches compare on it)."""
    return {
        "backend": kind,
        "served": served,
        "errors": errors,
        "seconds": seconds,
        "qps": served / seconds if seconds else 0.0,
    }


class BaseBackend:
    """Shared accounting, context management, and ``select`` in terms of
    ``select_many`` for the concrete backends."""

    kind = "backend"

    def __init__(self) -> None:
        self._served = 0
        self._errors = 0
        self._seconds = 0.0
        self._closed = False
        #: Per-backend telemetry; concrete backends and the transports
        #: observe into it, and ``stats()`` reports its snapshot under
        #: the shared ``"metrics"`` key.
        self.metrics = MetricsRegistry()

    # -- protocol ------------------------------------------------------------
    def select(self, request: SelectionRequest) -> SelectionResponse:
        return self.select_many([request], raise_on_error=True)[0]

    def select_many(
        self,
        requests: Sequence[SelectionRequest],
        raise_on_error: bool = True,
    ) -> list:
        raise NotImplementedError

    def stats(self) -> dict:
        payload = core_stats(
            self.kind, self._served, self._errors, self._seconds
        )
        payload["metrics"] = self.metrics.snapshot()
        return payload

    def close(self) -> None:
        self._closed = True

    # -- shared plumbing -----------------------------------------------------
    def _require_open(self) -> None:
        if self._closed:
            raise BackendError(f"{type(self).__name__} is closed")

    def _account(self, entries: Sequence, seconds: float) -> None:
        self._served += sum(
            1 for e in entries if isinstance(e, SelectionResponse)
        )
        self._errors += sum(
            1 for e in entries if not isinstance(e, SelectionResponse)
        )
        self._seconds += seconds
        if entries:
            self.metrics.histogram("batch.seconds").observe(seconds)
            self.metrics.histogram("batch.size").observe(float(len(entries)))

    @staticmethod
    def _finish(entries: list, raise_on_error: bool) -> list:
        if raise_on_error:
            for entry in entries:
                if isinstance(entry, BaseException):
                    raise entry
        return entries

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InProcessBackend(BaseBackend):
    """This process serves: an :class:`Engine` (one dataset) or a
    :class:`Workspace` (many datasets) behind the backend protocol.

    >>> backend = InProcessBackend.from_artifact("/tmp/engine")  # doctest: +SKIP
    >>> backend.select(SelectionRequest(k=5, l=4))               # doctest: +SKIP
    """

    kind = "inproc"

    def __init__(self, host: "Engine | Workspace") -> None:
        super().__init__()
        if not hasattr(host, "select"):
            raise TypeError(
                f"InProcessBackend hosts an Engine or Workspace, got "
                f"{type(host).__name__}"
            )
        self.host = host
        # An Engine is immutable once fitted, so its fingerprint is
        # computed once and memoized; a Workspace re-reads the store
        # catalog on every stats() call — that is how version bumps
        # propagate to generation-based caches.
        self._engine_fingerprint: Optional[dict] = None

    @classmethod
    def from_artifact(
        cls,
        artifact: "str | Path",
        cache_size: int = 256,
        algorithm: Optional[str] = None,
        selector_options: Optional[dict] = None,
        dataset: Optional[str] = None,
    ) -> "InProcessBackend":
        """Warm-start one :class:`Engine` from a saved artifact."""
        return cls(Engine.load(
            artifact,
            cache_size=cache_size,
            algorithm=algorithm,
            selector_options=selector_options,
            dataset=dataset,
        ))

    @classmethod
    def from_store(cls, store, **workspace_options) -> "InProcessBackend":
        """A multi-dataset backend: a :class:`Workspace` over ``store``."""
        return cls(Workspace(store, **workspace_options))

    def select_many(
        self,
        requests: Sequence[SelectionRequest],
        raise_on_error: bool = True,
    ) -> list:
        self._require_open()
        start = time.perf_counter()
        entries: list = []
        for request in requests:
            try:
                entries.append(self.host.select(request))
            except BackendError:
                # The host itself is unusable (not a per-request fault):
                # that is failover-grade and must not be buried in a slot
                # where raise_on_error=False would hide it from a router.
                raise
            except Exception as error:
                # Everything else an in-process host raises is
                # request-shaped (validation, degenerate query state) and
                # keeps its original type in the request's slot, matching
                # what a bare Engine.select would have raised.
                entries.append(error)
        self._account(entries, time.perf_counter() - start)
        return self._finish(entries, raise_on_error)

    def stats(self) -> dict:
        payload = super().stats()
        if isinstance(self.host, Workspace):
            payload["workspace"] = self.host.stats.to_json()
        else:
            cache = self.host.cache_stats
            payload["cache"] = {"hits": cache.hits, "misses": cache.misses}
        fingerprints = self._fingerprints()
        if fingerprints:
            payload["fingerprints"] = fingerprints
        return payload

    def _fingerprints(self) -> dict:
        """``{dataset: "data:vocab"}`` generation tags of what this
        backend serves — the invalidation signal for response caches
        (see :mod:`repro.gateway.cache`).  Workspace hosts report the
        store catalog's *latest* versions: after a version bump, pair
        the bump with :meth:`Workspace.evict` so the resident engines
        reload the generation the fingerprints advertise."""
        if isinstance(self.host, Workspace):
            try:
                records = self.host.store.records()
            except StoreError:
                return {}
            return {
                record.name:
                    f"{record.data_fingerprint}:{record.vocab_fingerprint}"
                for record in records
            }
        if self._engine_fingerprint is None:
            try:
                binned = self.host.binned
            except RuntimeError:
                return {}  # not fitted yet: nothing served, nothing tagged
            self._engine_fingerprint = {
                self.host.dataset or "":
                    f"{_codes_fingerprint(binned.codes)}:"
                    f"{binned.vocab_fingerprint}"
            }
        return self._engine_fingerprint

    def close(self) -> None:
        if isinstance(self.host, Workspace):
            self.host.evict()
        super().close()


class PoolBackend(BaseBackend):
    """An :class:`EnginePool` of warm-start worker processes, conformed to
    the backend protocol.  Constructing the backend starts the pool (every
    worker ``Engine.load``-s the artifact); adopt an already-built pool via
    ``pool=``."""

    kind = "pool"

    def __init__(
        self,
        artifact: "str | Path | None" = None,
        workers: int = 2,
        cache_size: int = 256,
        algorithm: Optional[str] = None,
        selector_options: Optional[dict] = None,
        routing: str = "shared",
        start_method: Optional[str] = None,
        pool: Optional[EnginePool] = None,
    ):
        super().__init__()
        if pool is None:
            if artifact is None:
                raise ValueError("PoolBackend needs an artifact (or a pool)")
            pool = EnginePool(
                artifact,
                workers=workers,
                cache_size=cache_size,
                algorithm=algorithm,
                selector_options=selector_options,
                routing=routing,
                start_method=start_method,
            )
        self.pool = pool.start()

    def select_many(
        self,
        requests: Sequence[SelectionRequest],
        raise_on_error: bool = True,
    ) -> list:
        self._require_open()
        start = time.perf_counter()
        entries = self.pool.select_many(requests, raise_on_error=False)
        self._account(entries, time.perf_counter() - start)
        return self._finish(entries, raise_on_error)

    def stats(self) -> dict:
        payload = super().stats()
        payload["pool"] = self.pool.stats.to_json()
        return payload

    def close(self) -> None:
        self.pool.close()
        super().close()


def artifact_backend(
    artifact: "str | Path",
    workers: int = 1,
    cache_size: int = 256,
    routing: str = "shared",
    algorithm: Optional[str] = None,
    selector_options: Optional[dict] = None,
) -> "InProcessBackend | PoolBackend":
    """The standard local backend over one saved artifact.

    ``workers=1`` loads the engine in this process; ``workers>1`` starts an
    :class:`EnginePool`.  This is the single builder the CLI's ``serve``
    command and the socket server's subprocess helper share, so every
    entry point grows new backends in one place.
    """
    if workers > 1:
        return PoolBackend(
            artifact,
            workers=workers,
            cache_size=cache_size,
            algorithm=algorithm,
            selector_options=selector_options,
            routing=routing,
        )
    return InProcessBackend.from_artifact(
        artifact,
        cache_size=cache_size,
        algorithm=algorithm,
        selector_options=selector_options,
    )
