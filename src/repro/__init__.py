"""repro — reproduction of "Selecting Sub-tables for Data Exploration" (ICDE 2023).

The package implements the SubTab framework end to end:

* :mod:`repro.frame` — columnar DataFrame substrate (pandas stand-in);
* :mod:`repro.binning` — KDE/width/quantile binning (Def. 3.2);
* :mod:`repro.rules` — Apriori association-rule mining (Def. 3.4);
* :mod:`repro.metrics` — cell coverage, diversity, combined score (Sec. 3.2);
* :mod:`repro.embedding` — tabular Word2Vec and EmbDI-style embeddings (Sec. 5.1);
* :mod:`repro.cluster` — KMeans and centroid-representative selection;
* :mod:`repro.core` — the SubTab algorithm (Alg. 2) and display integration;
* :mod:`repro.baselines` — RAN, NC, Greedy (Alg. 1), SemiGreedy, MAB, EmbDI;
* :mod:`repro.queries` — SP query algebra and EDA-session simulation;
* :mod:`repro.api` — the unified selector surface: ``Selector`` protocol,
  string-keyed registry, typed requests/responses, and the ``Engine``
  facade with persistable fitted artifacts;
* :mod:`repro.serve` — session-serving shim over the Engine;
* :mod:`repro.datasets` — synthetic stand-ins for the paper's six datasets;
* :mod:`repro.study` — simulated user study (Table 1, Fig. 5);
* :mod:`repro.hardness` — executable reductions behind Propositions 4.1/4.2.

Quickstart::

    from repro import SubTab, SubTabConfig
    from repro.datasets import make_dataset

    table = make_dataset("flights", n_rows=5_000, seed=7)
    subtab = SubTab(SubTabConfig(k=10, l=10, seed=7)).fit(table.frame)
    print(subtab.select(targets=["CANCELLED"]))
"""

from repro.api import (
    Engine,
    SelectionRequest,
    SelectionResponse,
    Selector,
    make_selector,
    register_selector,
    selector_names,
)
from repro.core import (
    ExplorationSession,
    SubTab,
    SubTabConfig,
    SubTable,
    explore,
)
from repro.frame import Column, DataFrame, read_csv, to_csv
from repro.metrics import Scores, SubTableScorer
from repro.rules import AssociationRule, RuleMiner
from repro.serve import SubTabService

__version__ = "1.1.0"

__all__ = [
    "AssociationRule",
    "Column",
    "DataFrame",
    "Engine",
    "ExplorationSession",
    "RuleMiner",
    "Scores",
    "SelectionRequest",
    "SelectionResponse",
    "Selector",
    "SubTab",
    "SubTabConfig",
    "SubTabService",
    "SubTable",
    "SubTableScorer",
    "__version__",
    "explore",
    "make_selector",
    "read_csv",
    "register_selector",
    "selector_names",
    "to_csv",
]
