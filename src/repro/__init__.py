"""repro — reproduction of "Selecting Sub-tables for Data Exploration" (ICDE 2023).

The package implements the SubTab framework end to end:

* :mod:`repro.frame` — columnar DataFrame substrate (pandas stand-in);
* :mod:`repro.binning` — KDE/width/quantile binning (Def. 3.2);
* :mod:`repro.rules` — Apriori association-rule mining (Def. 3.4);
* :mod:`repro.metrics` — cell coverage, diversity, combined score (Sec. 3.2);
* :mod:`repro.embedding` — tabular Word2Vec and EmbDI-style embeddings (Sec. 5.1);
* :mod:`repro.cluster` — KMeans and centroid-representative selection;
* :mod:`repro.core` — the SubTab algorithm (Alg. 2) and display integration;
* :mod:`repro.baselines` — RAN, NC, Greedy (Alg. 1), SemiGreedy, MAB, EmbDI;
* :mod:`repro.queries` — SP query algebra and EDA-session simulation;
* :mod:`repro.api` — the serving stack: ``Selector`` protocol, string-keyed
  registry, typed requests/responses with a JSON wire format, the
  ``Engine`` per-dataset kernel with persistable fitted artifacts, the
  ``ArtifactStore`` of named versioned artifacts, and the ``Workspace``
  multi-dataset front door;
* :mod:`repro.serve` — multi-process serving: ``EnginePool`` warm-start
  worker pools (plus the deprecated ``SubTabService`` shim);
* :mod:`repro.datasets` — synthetic stand-ins for the paper's six datasets;
* :mod:`repro.study` — simulated user study (Table 1, Fig. 5);
* :mod:`repro.hardness` — executable reductions behind Propositions 4.1/4.2.

Quickstart::

    from repro import SubTab, SubTabConfig
    from repro.datasets import make_dataset

    table = make_dataset("flights", n_rows=5_000, seed=7)
    subtab = SubTab(SubTabConfig(k=10, l=10, seed=7)).fit(table.frame)
    print(subtab.select(targets=["CANCELLED"]))
"""

from repro.api import (
    ArtifactStore,
    Engine,
    SelectionRequest,
    SelectionResponse,
    Selector,
    Workspace,
    make_selector,
    register_selector,
    selector_names,
)
from repro.core import (
    ExplorationSession,
    SubTab,
    SubTabConfig,
    SubTable,
    explore,
)
from repro.frame import Column, DataFrame, read_csv, to_csv
from repro.metrics import Scores, SubTableScorer
from repro.rules import AssociationRule, RuleMiner
from repro.serve import EnginePool, SubTabService

__version__ = "1.2.0"

__all__ = [
    "ArtifactStore",
    "AssociationRule",
    "Column",
    "DataFrame",
    "Engine",
    "EnginePool",
    "ExplorationSession",
    "RuleMiner",
    "Scores",
    "SelectionRequest",
    "SelectionResponse",
    "Selector",
    "SubTab",
    "SubTabConfig",
    "SubTabService",
    "SubTable",
    "SubTableScorer",
    "Workspace",
    "__version__",
    "explore",
    "make_selector",
    "read_csv",
    "register_selector",
    "selector_names",
    "to_csv",
]
