"""Value normalization — the first pre-processing step of Algorithm 2.

The paper normalizes raw values ("e.g., remove illegal characters") before
binning.  We strip control characters, trim and collapse whitespace in
categorical values, and trim column names.
"""

from __future__ import annotations

import re
import unicodedata

from repro.frame.column import Column
from repro.frame.frame import DataFrame

_WHITESPACE_RUN = re.compile(r"\s+")


def normalize_text(value: str) -> str:
    """Canonical form of a categorical value: printable, single-spaced."""
    cleaned = "".join(
        ch for ch in value if unicodedata.category(ch)[0] != "C" or ch in " \t"
    )
    return _WHITESPACE_RUN.sub(" ", cleaned).strip()


def normalize_column(column: Column) -> Column:
    """Normalize one column (numeric columns pass through unchanged)."""
    if column.is_numeric:
        return column
    values = [
        None if value is None else normalize_text(value) for value in column.values
    ]
    # Normalization can empty a string, which then counts as missing.
    values = [None if value == "" else value for value in values]
    return Column(column.name, values, kind=column.kind)


def normalize_table(frame: DataFrame) -> DataFrame:
    """Normalize all values and column names of ``frame``."""
    columns = []
    for name in frame.columns:
        column = normalize_column(frame.column(name))
        clean_name = normalize_text(name)
        if clean_name != column.name:
            column = column.rename(clean_name)
        columns.append(column)
    return DataFrame(columns)
