"""Whole-table binning: the :class:`TableBinner` and the :class:`BinnedTable`.

A :class:`BinnedTable` is the shared intermediate representation consumed by
every downstream component:

* association-rule mining reads its rows as transactions of (column, bin)
  items;
* the diversity metric compares cells by bin identity;
* the embedding corpus serializes its cells as tokens ``"COLUMN=bin_label"``.

``codes[i, j]`` stores the bin index of cell (i, j) within column j's binning;
``token_ids[i, j]`` stores a globally unique id for the (column, bin) pair.

Selection-projection views (:class:`BinnedView`, produced by
:meth:`BinnedTable.subset`) share the parent table's *global token space*:
their ``token_ids`` are a pure gather of the parent's ids and their ``vocab``
is the parent's full vocabulary.  This is what lets one trained cell
embedding serve every query result — ids are never re-numbered, so vectors
trained on the full table index correctly into any view.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

import numpy as np

from repro.binning.base import ColumnBinning
from repro.binning.strategies import (
    KDE,
    bin_categorical_column,
    bin_numeric_column,
)
from repro.frame.frame import DataFrame

TOKEN_SEPARATOR = "="


def make_token(column: str, label: str) -> str:
    """The corpus token for bin ``label`` of ``column``."""
    return f"{column}{TOKEN_SEPARATOR}{label}"


def normalize_row_indices(rows) -> np.ndarray:
    """Row selection as an int64 index array; boolean masks are expanded.

    Shared by :meth:`BinnedTable.subset` and the serving layer so both
    interpret row selections identically (that equivalence is what makes
    served vectors bit-identical to cold ones).  Non-integer dtypes raise
    instead of being silently floored.
    """
    row_idx = np.asarray(rows)
    if row_idx.size == 0:
        # np.asarray([]) defaults to float64; an empty selection is valid.
        return np.zeros(0, dtype=np.int64)
    if row_idx.dtype == bool:
        return np.flatnonzero(row_idx)
    if np.issubdtype(row_idx.dtype, np.integer):
        return row_idx.astype(np.int64)
    raise IndexError(
        f"row indices must be integers or a boolean mask, "
        f"got dtype {row_idx.dtype}"
    )


def fingerprint_vocab(vocab: Sequence[str]) -> str:
    """Stable content hash of a token vocabulary.

    Two vocabularies fingerprint equal iff they list the same tokens in the
    same order — i.e. iff token ids mean the same (column, bin) pairs.  Used
    by :meth:`repro.embedding.model.CellEmbeddingModel._check_compatible` to
    reject tables whose ids live in a different token space.
    """
    digest = hashlib.sha1()
    for token in vocab:
        digest.update(token.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


class BinnedTable:
    """A table together with its binning and per-cell bin codes."""

    def __init__(self, frame: DataFrame, binnings: dict[str, ColumnBinning],
                 codes: np.ndarray):
        if codes.shape != (frame.n_rows, frame.n_cols):
            raise ValueError(
                f"codes shape {codes.shape} does not match frame shape {frame.shape}"
            )
        self.frame = frame
        self.binnings = binnings
        self.codes = codes
        self.columns = frame.columns
        self._column_index = {name: j for j, name in enumerate(self.columns)}
        self._build_vocabulary()

    def _build_vocabulary(self) -> None:
        self.vocab: list[str] = []
        self.token_to_id: dict[str, int] = {}
        self._offsets = np.zeros(len(self.columns) + 1, dtype=np.int64)
        for j, name in enumerate(self.columns):
            binning = self.binnings[name]
            self._offsets[j + 1] = self._offsets[j] + binning.n_bins
            for label in binning.labels:
                token = make_token(name, label)
                self.token_to_id[token] = len(self.vocab)
                self.vocab.append(token)
        self.token_ids = (self.codes + self._offsets[:-1][np.newaxis, :]).astype(
            np.int64
        )
        self._vocab_fingerprint: Optional[str] = None

    @property
    def vocab_fingerprint(self) -> str:
        """Content hash identifying this table's token space (lazy, cached)."""
        if self._vocab_fingerprint is None:
            self._vocab_fingerprint = fingerprint_vocab(self.vocab)
        return self._vocab_fingerprint

    # -- shape ---------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self.frame.n_rows

    @property
    def n_cols(self) -> int:
        return self.frame.n_cols

    @property
    def n_tokens(self) -> int:
        return len(self.vocab)

    # -- lookups -------------------------------------------------------------
    def column_index(self, name: str) -> int:
        try:
            return self._column_index[name]
        except KeyError:
            raise KeyError(f"no column named {name!r}") from None

    def binning_of(self, name: str) -> ColumnBinning:
        return self.binnings[name]

    def column_token_range(self, j: int) -> tuple[int, int]:
        """Half-open global token-id range ``[lo, hi)`` owned by column ``j``.

        Global ids are assigned column-contiguously, so one histogram over
        a whole token-id matrix can be sliced per column by these ranges
        (the grouped-bincount dispersion kernel relies on this).
        """
        return int(self._offsets[j]), int(self._offsets[j + 1])

    def token_of_cell(self, row: int, column: "str | int") -> str:
        j = column if isinstance(column, int) else self.column_index(column)
        return self.vocab[self.token_ids[row, j]]

    def bin_of_token(self, token_id: int):
        """The (column name, :class:`Bin`) pair behind a global token id."""
        j = int(np.searchsorted(self._offsets, token_id, side="right") - 1)
        name = self.columns[j]
        bin_index = token_id - int(self._offsets[j])
        return name, self.binnings[name].bins[bin_index]

    def item_of_cell(self, row: int, column: "str | int") -> tuple[str, str]:
        """The (column, bin label) *item* of a cell, as used by rules."""
        j = column if isinstance(column, int) else self.column_index(column)
        name = self.columns[j]
        return name, self.binnings[name].labels[self.codes[row, j]]

    def row_token_ids(self, row: int) -> np.ndarray:
        return self.token_ids[row, :]

    def column_token_ids(self, column: "str | int") -> np.ndarray:
        j = column if isinstance(column, int) else self.column_index(column)
        return self.token_ids[:, j]

    # -- derived tables --------------------------------------------------------
    def subset(self, rows: Optional[Sequence[int]] = None,
               columns: Optional[Sequence[str]] = None) -> "BinnedView":
        """Binned view of a selection-projection of the underlying table.

        This is the key enabler of the paper's interactive query path: the
        bins, vocabulary and *global token ids* of the full table are reused;
        only the code and token-id matrices are sliced.  The returned
        :class:`BinnedView` therefore indexes correctly into any cell
        embedding trained on this table.
        """
        if rows is None:
            row_idx = np.arange(self.n_rows)
        else:
            row_idx = normalize_row_indices(rows)
        column_names = self.columns if columns is None else list(columns)
        return BinnedView(self, row_idx, column_names)

    def item_matrix(self) -> list[list[tuple[str, str]]]:
        """All rows as lists of (column, bin label) items — transaction form."""
        labels_per_column = [self.binnings[name].labels for name in self.columns]
        return [
            [
                (name, labels_per_column[j][self.codes[i, j]])
                for j, name in enumerate(self.columns)
            ]
            for i in range(self.n_rows)
        ]


class BinnedView(BinnedTable):
    """A selection-projection view over a :class:`BinnedTable`.

    Shares the parent's token space outright: ``vocab``, ``token_to_id`` and
    the vocabulary fingerprint are the *parent's* objects, and ``token_ids``
    is a gather ``parent.token_ids[rows x columns]`` — ids are never
    re-numbered.  ``n_tokens`` consequently reports the full-table vocabulary
    size even when columns are projected away; any model trained on the
    parent is valid on every view.

    Views of views flatten: ``view.subset(...)`` composes the row/column
    selections and stays anchored to the same root table, so arbitrarily
    nested query refinements keep O(1) vocabulary sharing.
    """

    def __init__(self, parent: BinnedTable, row_idx: np.ndarray,
                 column_names: list[str]):
        col_idx = np.array(
            [parent.column_index(name) for name in column_names], dtype=np.int64
        )
        # Anchor to the root table so chained views stay one hop deep.
        if isinstance(parent, BinnedView):
            root = parent.parent
            row_idx = parent._row_indices[row_idx]
            col_idx = parent._col_indices[col_idx]
        else:
            root = parent
        self.parent = root
        self._row_indices = np.asarray(row_idx, dtype=np.int64)
        self._col_indices = col_idx
        gather = np.ix_(self._row_indices, self._col_indices)
        # Deliberately no super().__init__(): that would rebuild the
        # vocabulary over the kept columns and re-number token ids — the
        # exact bug views exist to prevent.
        self.binnings = {name: root.binnings[name] for name in column_names}
        self.codes = root.codes[gather]
        self.token_ids = root.token_ids[gather]
        self.columns = list(column_names)
        self._column_index = {name: j for j, name in enumerate(self.columns)}
        self.vocab = root.vocab
        self.token_to_id = root.token_to_id
        # The value frame is built lazily: selection runs entirely on the
        # gathered code/token-id matrices, and materializing the frame
        # (a per-cell coercion pass) dominated view construction.
        self._frame: "DataFrame | None" = None

    @property
    def frame(self) -> DataFrame:
        """The selection-projection of the root frame (lazy, cached)."""
        if self._frame is None:
            self._frame = self.parent.frame.take(self._row_indices).project(
                self.columns
            )
        return self._frame

    @property
    def n_rows(self) -> int:
        return len(self._row_indices)

    @property
    def n_cols(self) -> int:
        return len(self._col_indices)

    def column_token_range(self, j: int) -> tuple[int, int]:
        """Delegate to the root: token ids are global, offsets live there."""
        return self.parent.column_token_range(int(self._col_indices[j]))

    @property
    def vocab_fingerprint(self) -> str:
        """The root table's fingerprint — views live in the same token space."""
        return self.parent.vocab_fingerprint

    @property
    def row_indices(self) -> np.ndarray:
        """Positions of the view's rows in the root table."""
        return self._row_indices

    @property
    def column_indices(self) -> np.ndarray:
        """Positions of the view's columns in the root table."""
        return self._col_indices

    def bin_of_token(self, token_id: int):
        """Delegate to the root: token ids are global, offsets live there."""
        return self.parent.bin_of_token(token_id)


class TableBinner:
    """Bins every column of a table (paper Definition 3.2 / Section 5.1).

    Parameters
    ----------
    n_bins:
        Target number of value bins per continuous column (default 5, the
        paper's default; Fig. 10a varies this in {5, 7, 10}).
    strategy:
        ``"kde"`` (default, per Section 6.1), ``"width"`` or ``"quantile"``.
    max_categories:
        Categorical columns with more distinct values than this get an
        ``OTHER`` tail bin.
    seed:
        Seed for the KDE sub-sampling of very large columns.
    """

    def __init__(self, n_bins: int = 5, strategy: str = KDE,
                 max_categories: int = 12, seed: int = 0):
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        if max_categories < 2:
            raise ValueError(f"max_categories must be >= 2, got {max_categories}")
        self.n_bins = n_bins
        self.strategy = strategy
        self.max_categories = max_categories
        self.seed = seed

    @classmethod
    def from_config(cls, config) -> "TableBinner":
        """Binner configured from any object carrying the binning knobs
        (``n_bins``/``bin_strategy``/``max_categories``/``seed`` — e.g. a
        :class:`~repro.core.config.SubTabConfig`).  The single place the
        config-to-binner mapping lives, shared by SubTab, the selector
        base class, and the Engine."""
        return cls(
            n_bins=config.n_bins,
            strategy=config.bin_strategy,
            max_categories=config.max_categories,
            seed=config.seed,
        )

    def bin_column(self, column) -> ColumnBinning:
        """Choose and apply the right strategy for one column."""
        if column.is_numeric:
            return bin_numeric_column(
                column, n_bins=self.n_bins, strategy=self.strategy, seed=self.seed
            )
        return bin_categorical_column(column, max_categories=self.max_categories)

    def bin_table(self, frame: DataFrame) -> BinnedTable:
        """Bin every column of ``frame`` and assemble the code matrix."""
        binnings: dict[str, ColumnBinning] = {}
        codes = np.empty((frame.n_rows, frame.n_cols), dtype=np.int64)
        for j, name in enumerate(frame.columns):
            column = frame.column(name)
            binning = self.bin_column(column)
            binnings[name] = binning
            codes[:, j] = binning.assign(column.values)
        return BinnedTable(frame, binnings, codes)
