"""Whole-table binning: the :class:`TableBinner` and the :class:`BinnedTable`.

A :class:`BinnedTable` is the shared intermediate representation consumed by
every downstream component:

* association-rule mining reads its rows as transactions of (column, bin)
  items;
* the diversity metric compares cells by bin identity;
* the embedding corpus serializes its cells as tokens ``"COLUMN=bin_label"``.

``codes[i, j]`` stores the bin index of cell (i, j) within column j's binning;
``token_ids[i, j]`` stores a globally unique id for the (column, bin) pair.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.binning.base import ColumnBinning
from repro.binning.strategies import (
    KDE,
    bin_categorical_column,
    bin_numeric_column,
)
from repro.frame.frame import DataFrame

TOKEN_SEPARATOR = "="


def make_token(column: str, label: str) -> str:
    """The corpus token for bin ``label`` of ``column``."""
    return f"{column}{TOKEN_SEPARATOR}{label}"


class BinnedTable:
    """A table together with its binning and per-cell bin codes."""

    def __init__(self, frame: DataFrame, binnings: dict[str, ColumnBinning],
                 codes: np.ndarray):
        if codes.shape != (frame.n_rows, frame.n_cols):
            raise ValueError(
                f"codes shape {codes.shape} does not match frame shape {frame.shape}"
            )
        self.frame = frame
        self.binnings = binnings
        self.codes = codes
        self.columns = frame.columns
        self._column_index = {name: j for j, name in enumerate(self.columns)}
        self._build_vocabulary()

    def _build_vocabulary(self) -> None:
        self.vocab: list[str] = []
        self.token_to_id: dict[str, int] = {}
        self._offsets = np.zeros(len(self.columns) + 1, dtype=np.int64)
        for j, name in enumerate(self.columns):
            binning = self.binnings[name]
            self._offsets[j + 1] = self._offsets[j] + binning.n_bins
            for label in binning.labels:
                token = make_token(name, label)
                self.token_to_id[token] = len(self.vocab)
                self.vocab.append(token)
        self.token_ids = (self.codes + self._offsets[:-1][np.newaxis, :]).astype(
            np.int64
        )

    # -- shape ---------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self.frame.n_rows

    @property
    def n_cols(self) -> int:
        return self.frame.n_cols

    @property
    def n_tokens(self) -> int:
        return len(self.vocab)

    # -- lookups -------------------------------------------------------------
    def column_index(self, name: str) -> int:
        try:
            return self._column_index[name]
        except KeyError:
            raise KeyError(f"no column named {name!r}") from None

    def binning_of(self, name: str) -> ColumnBinning:
        return self.binnings[name]

    def token_of_cell(self, row: int, column: "str | int") -> str:
        j = column if isinstance(column, int) else self.column_index(column)
        return self.vocab[self.token_ids[row, j]]

    def bin_of_token(self, token_id: int):
        """The (column name, :class:`Bin`) pair behind a global token id."""
        j = int(np.searchsorted(self._offsets, token_id, side="right") - 1)
        name = self.columns[j]
        bin_index = token_id - int(self._offsets[j])
        return name, self.binnings[name].bins[bin_index]

    def item_of_cell(self, row: int, column: "str | int") -> tuple[str, str]:
        """The (column, bin label) *item* of a cell, as used by rules."""
        j = column if isinstance(column, int) else self.column_index(column)
        name = self.columns[j]
        return name, self.binnings[name].labels[self.codes[row, j]]

    def row_token_ids(self, row: int) -> np.ndarray:
        return self.token_ids[row, :]

    def column_token_ids(self, column: "str | int") -> np.ndarray:
        j = column if isinstance(column, int) else self.column_index(column)
        return self.token_ids[:, j]

    # -- derived tables --------------------------------------------------------
    def subset(self, rows: Optional[Sequence[int]] = None,
               columns: Optional[Sequence[str]] = None) -> "BinnedTable":
        """Binned view of a selection-projection of the underlying table.

        This is the key enabler of the paper's interactive query path: the
        bins (and therefore tokens and embeddings) of the full table are
        reused, only the code matrix is sliced.
        """
        row_idx = np.arange(self.n_rows) if rows is None else np.asarray(rows)
        column_names = self.columns if columns is None else list(columns)
        col_idx = np.array([self.column_index(name) for name in column_names])
        frame = self.frame.take(row_idx).project(column_names)
        codes = self.codes[np.ix_(row_idx, col_idx)]
        binnings = {name: self.binnings[name] for name in column_names}
        return BinnedTable(frame, binnings, codes)

    def item_matrix(self) -> list[list[tuple[str, str]]]:
        """All rows as lists of (column, bin label) items — transaction form."""
        labels_per_column = [self.binnings[name].labels for name in self.columns]
        return [
            [
                (name, labels_per_column[j][self.codes[i, j]])
                for j, name in enumerate(self.columns)
            ]
            for i in range(self.n_rows)
        ]


class TableBinner:
    """Bins every column of a table (paper Definition 3.2 / Section 5.1).

    Parameters
    ----------
    n_bins:
        Target number of value bins per continuous column (default 5, the
        paper's default; Fig. 10a varies this in {5, 7, 10}).
    strategy:
        ``"kde"`` (default, per Section 6.1), ``"width"`` or ``"quantile"``.
    max_categories:
        Categorical columns with more distinct values than this get an
        ``OTHER`` tail bin.
    seed:
        Seed for the KDE sub-sampling of very large columns.
    """

    def __init__(self, n_bins: int = 5, strategy: str = KDE,
                 max_categories: int = 12, seed: int = 0):
        if n_bins < 1:
            raise ValueError(f"n_bins must be >= 1, got {n_bins}")
        if max_categories < 2:
            raise ValueError(f"max_categories must be >= 2, got {max_categories}")
        self.n_bins = n_bins
        self.strategy = strategy
        self.max_categories = max_categories
        self.seed = seed

    def bin_column(self, column) -> ColumnBinning:
        """Choose and apply the right strategy for one column."""
        if column.is_numeric:
            return bin_numeric_column(
                column, n_bins=self.n_bins, strategy=self.strategy, seed=self.seed
            )
        return bin_categorical_column(column, max_categories=self.max_categories)

    def bin_table(self, frame: DataFrame) -> BinnedTable:
        """Bin every column of ``frame`` and assemble the code matrix."""
        binnings: dict[str, ColumnBinning] = {}
        codes = np.empty((frame.n_rows, frame.n_cols), dtype=np.int64)
        for j, name in enumerate(frame.columns):
            column = frame.column(name)
            binning = self.bin_column(column)
            binnings[name] = binning
            codes[:, j] = binning.assign(column.values)
        return BinnedTable(frame, binnings, codes)
