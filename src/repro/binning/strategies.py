"""Binning strategies for continuous and categorical columns.

The paper's implementation bins continuous columns with kernel density
estimation (Section 6.1): cut the domain at the most prominent local minima
of a Gaussian KDE, so bins follow the modes of the value distribution.  We
implement that (via :func:`scipy.stats.gaussian_kde`) along with equal-width
and quantile fallbacks, which also serve the binning ablation bench.

Categorical columns keep each distinct value as a bin when there are few of
them, and otherwise group the tail into an ``OTHER`` bin — the analogue of
Example 3.3's airline-by-continent grouping when no semantic hierarchy is
available.
"""

from __future__ import annotations

import numpy as np
from scipy.stats import gaussian_kde

from repro.binning.base import (
    CATEGORY,
    MISSING,
    MISSING_LABEL,
    OTHER_LABEL,
    Bin,
    ColumnBinning,
    make_range_bins,
)
from repro.frame.column import Column

KDE = "kde"
EQUAL_WIDTH = "width"
QUANTILE = "quantile"

_STRATEGIES = (KDE, EQUAL_WIDTH, QUANTILE)
_KDE_GRID_SIZE = 512
_KDE_MAX_SAMPLE = 20_000


def _dedupe_edges(edges: np.ndarray, lo: float, hi: float) -> np.ndarray:
    """Keep edges strictly inside (lo, hi), sorted and distinct."""
    edges = np.unique(np.asarray(edges, dtype=np.float64))
    return edges[(edges > lo) & (edges < hi)]


def quantile_edges(values: np.ndarray, n_bins: int) -> np.ndarray:
    """Interior edges placing roughly equal row counts into each bin."""
    probs = np.linspace(0.0, 1.0, n_bins + 1)[1:-1]
    return np.quantile(values, probs)


def equal_width_edges(lo: float, hi: float, n_bins: int) -> np.ndarray:
    """Interior edges of ``n_bins`` equal-width intervals over [lo, hi]."""
    return np.linspace(lo, hi, n_bins + 1)[1:-1]


def kde_edges(values: np.ndarray, n_bins: int, seed: int = 0) -> np.ndarray:
    """Interior edges at the deepest local minima of a Gaussian KDE.

    If the density has fewer than ``n_bins - 1`` local minima, remaining cuts
    are filled from quantiles so the column still gets ``n_bins`` bins (the
    parameter-tuning experiment of Fig. 10a requires a controllable count).
    """
    lo, hi = float(values.min()), float(values.max())
    if lo == hi:
        return np.empty(0)
    sample = values
    if len(sample) > _KDE_MAX_SAMPLE:
        rng = np.random.default_rng(seed)
        sample = rng.choice(sample, size=_KDE_MAX_SAMPLE, replace=False)
    try:
        density_fn = gaussian_kde(sample)
        grid = np.linspace(lo, hi, _KDE_GRID_SIZE)
        density = density_fn(grid)
    except np.linalg.LinAlgError:
        return _dedupe_edges(quantile_edges(values, n_bins), lo, hi)

    interior = np.arange(1, _KDE_GRID_SIZE - 1)
    is_minimum = (density[interior] < density[interior - 1]) & (
        density[interior] <= density[interior + 1]
    )
    minima = interior[is_minimum]
    # The deepest minima are the most salient separations between modes.
    order = np.argsort(density[minima])
    chosen = grid[minima[order][: n_bins - 1]]
    if len(chosen) < n_bins - 1:
        fill = quantile_edges(values, n_bins)
        chosen = np.concatenate([chosen, fill])
    edges = _dedupe_edges(chosen, lo, hi)
    return np.sort(edges)[: n_bins - 1]


def bin_numeric_column(
    column: Column,
    n_bins: int = 5,
    strategy: str = KDE,
    seed: int = 0,
) -> ColumnBinning:
    """Bin a numeric column into at most ``n_bins`` value bins (+ missing).

    Columns with at most ``n_bins`` distinct values get one bin per value
    (binary columns like CANCELLED keep their categories as bins).
    """
    if strategy not in _STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected one of {_STRATEGIES}")
    values = column.non_missing_values().astype(np.float64)
    has_missing = column.n_missing() > 0
    if len(values) == 0:
        bins = [Bin(column=column.name, label=MISSING_LABEL, kind=MISSING)]
        return ColumnBinning(column.name, bins)

    distinct = np.unique(values)
    lo, hi = float(distinct[0]), float(distinct[-1])
    if len(distinct) <= n_bins:
        # One bin per value: midpoints between consecutive values are edges.
        edges = (distinct[:-1] + distinct[1:]) / 2.0 if len(distinct) > 1 else np.empty(0)
        return make_range_bins(column.name, edges, lo, hi, include_missing=has_missing)

    if strategy == KDE:
        edges = kde_edges(values, n_bins, seed=seed)
    elif strategy == QUANTILE:
        edges = quantile_edges(values, n_bins)
    else:
        edges = equal_width_edges(lo, hi, n_bins)
    edges = _dedupe_edges(edges, lo, hi)
    if len(edges) == 0:
        edges = _dedupe_edges(equal_width_edges(lo, hi, n_bins), lo, hi)
    return make_range_bins(column.name, edges, lo, hi, include_missing=has_missing)


def bin_categorical_column(column: Column, max_categories: int = 12) -> ColumnBinning:
    """Bin a categorical column: one bin per value, or top values + OTHER.

    With more than ``max_categories`` distinct values, the most frequent
    ``max_categories - 1`` values each keep a bin and the rest share OTHER.
    """
    counts = column.value_counts()
    has_missing = column.n_missing() > 0
    bins: list[Bin] = []
    if len(counts) <= max_categories:
        for value in counts:
            bins.append(
                Bin(column=column.name, label=str(value), kind=CATEGORY,
                    categories=frozenset([value]))
            )
    else:
        kept = list(counts.keys())[: max_categories - 1]
        rest = frozenset(set(counts.keys()) - set(kept))
        for value in kept:
            bins.append(
                Bin(column=column.name, label=str(value), kind=CATEGORY,
                    categories=frozenset([value]))
            )
        bins.append(
            Bin(column=column.name, label=OTHER_LABEL, kind=CATEGORY, categories=rest)
        )
    if has_missing or not bins:
        bins.append(Bin(column=column.name, label=MISSING_LABEL, kind=MISSING))
    return ColumnBinning(column.name, bins)
