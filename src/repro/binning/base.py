"""Bin and per-column binning structures (paper Definition 3.2).

A *binning function* maps each column to a finite set of bins such that every
value belongs to exactly one bin.  We implement three bin flavors:

* ``range`` bins partition a continuous domain into half-open intervals
  ``[low, high)`` (the last interval is closed on the right);
* ``category`` bins hold an explicit set of categorical values (one bin may
  be a catch-all ``OTHER`` group, mirroring Example 3.3's airline grouping);
* a dedicated ``missing`` bin absorbs NaN/None, so that missing-heavy
  columns (e.g. delay fields of cancelled flights) form visible patterns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

RANGE = "range"
CATEGORY = "category"
MISSING = "missing"

MISSING_LABEL = "missing"
OTHER_LABEL = "OTHER"

# Friendly labels used when a column has at most five range bins, echoing the
# paper's short/medium/long example.
_NAMED_LABELS = {
    1: ["all"],
    2: ["low", "high"],
    3: ["low", "medium", "high"],
    4: ["very_low", "low", "high", "very_high"],
    5: ["very_low", "low", "medium", "high", "very_high"],
}


@dataclass(frozen=True)
class Bin:
    """One bin of one column.

    ``label`` is unique within the column and stable across calls, so
    ``(column, label)`` identifies a bin globally — this pair is the *item*
    used by association rules and the *token* used by the embedding.
    """

    column: str
    label: str
    kind: str
    low: Optional[float] = None
    high: Optional[float] = None
    closed_right: bool = False
    categories: frozenset = field(default_factory=frozenset)

    def contains(self, value) -> bool:
        """Membership test for a raw cell value."""
        if self.kind == MISSING:
            return value is None or (isinstance(value, float) and math.isnan(value))
        if value is None or (isinstance(value, float) and math.isnan(value)):
            return False
        if self.kind == RANGE:
            value = float(value)
            if self.closed_right:
                return self.low <= value <= self.high
            return self.low <= value < self.high
        return value in self.categories

    def describe(self) -> str:
        """Human-readable description used by the highlighting UI."""
        if self.kind == MISSING:
            return f"{self.column} is missing"
        if self.kind == RANGE:
            bracket = "]" if self.closed_right else ")"
            return f"{self.column} in [{self.low:.4g}, {self.high:.4g}{bracket}"
        if len(self.categories) == 1:
            return f"{self.column} = {next(iter(self.categories))}"
        return f"{self.column} in {{{', '.join(sorted(map(str, self.categories)))}}}"


class ColumnBinning:
    """The ordered list of bins for a single column, with vectorized assignment.

    The missing bin, when present, is always the *last* bin.  Assignment
    returns the bin index for each value; every value maps to exactly one bin
    (the partition invariant, verified by property tests).
    """

    def __init__(self, column: str, bins: list[Bin], edges: "np.ndarray | None" = None):
        if not bins:
            raise ValueError(f"column {column!r} needs at least one bin")
        labels = [bin_.label for bin_ in bins]
        if len(set(labels)) != len(labels):
            raise ValueError(f"duplicate bin labels in column {column!r}: {labels}")
        self.column = column
        self.bins = list(bins)
        # For range binnings, ``edges`` holds the sorted interior cut points
        # so assignment can use searchsorted instead of per-bin containment.
        self._edges = edges
        self._missing_index = next(
            (i for i, bin_ in enumerate(bins) if bin_.kind == MISSING), None
        )
        self._category_index: dict = {}
        self._other_index: Optional[int] = None
        for i, bin_ in enumerate(bins):
            if bin_.kind != CATEGORY:
                continue
            if bin_.label == OTHER_LABEL:
                self._other_index = i
            for value in bin_.categories:
                self._category_index[value] = i

    @property
    def n_bins(self) -> int:
        return len(self.bins)

    @property
    def labels(self) -> list[str]:
        return [bin_.label for bin_ in self.bins]

    def assign(self, values: np.ndarray) -> np.ndarray:
        """Bin index for each value in ``values`` (numpy array)."""
        if self._edges is not None:
            return self._assign_ranges(values)
        return self._assign_categories(values)

    def _assign_ranges(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        missing = np.isnan(values)
        codes = np.searchsorted(self._edges, values, side="right").astype(np.int64)
        n_range_bins = len(self._edges) + 1
        codes = np.clip(codes, 0, n_range_bins - 1)
        if self._missing_index is not None:
            codes[missing] = self._missing_index
        elif missing.any():
            raise ValueError(
                f"column {self.column!r} has missing values but no missing bin"
            )
        return codes

    def _assign_categories(self, values: np.ndarray) -> np.ndarray:
        codes = np.empty(len(values), dtype=np.int64)
        for i, value in enumerate(values):
            if value is None or (isinstance(value, float) and math.isnan(value)):
                if self._missing_index is None:
                    raise ValueError(
                        f"column {self.column!r} has missing values but no missing bin"
                    )
                codes[i] = self._missing_index
                continue
            index = self._category_index.get(value, self._other_index)
            if index is None:
                raise ValueError(
                    f"value {value!r} of column {self.column!r} matches no bin"
                )
            codes[i] = index
        return codes

    def bin_of(self, value) -> Bin:
        """The single bin containing ``value``."""
        for bin_ in self.bins:
            if bin_.contains(value):
                return bin_
        raise ValueError(f"value {value!r} of column {self.column!r} matches no bin")


def range_labels(n: int) -> list[str]:
    """Labels for ``n`` range bins: semantic names up to 5, ``bin_i`` beyond."""
    if n in _NAMED_LABELS:
        return list(_NAMED_LABELS[n])
    return [f"bin_{i}" for i in range(n)]


def make_range_bins(column: str, edges: np.ndarray, lo: float, hi: float,
                    include_missing: bool) -> ColumnBinning:
    """Build a :class:`ColumnBinning` of ``len(edges)+1`` intervals over [lo, hi].

    ``edges`` are the interior cut points (sorted, strictly inside (lo, hi)).
    """
    edges = np.asarray(edges, dtype=np.float64)
    bounds = np.concatenate([[lo], edges, [hi]])
    n = len(bounds) - 1
    labels = range_labels(n)
    bins = [
        Bin(
            column=column,
            label=labels[i],
            kind=RANGE,
            low=float(bounds[i]),
            high=float(bounds[i + 1]),
            closed_right=(i == n - 1),
        )
        for i in range(n)
    ]
    if include_missing:
        bins.append(Bin(column=column, label=MISSING_LABEL, kind=MISSING))
    return ColumnBinning(column, bins, edges=edges)
