"""Binning (paper Definition 3.2 and Section 5.1 pre-processing).

Public surface::

    from repro.binning import TableBinner, BinnedTable, normalize_table

``TableBinner`` applies KDE-based binning to continuous columns (the method
named in Section 6.1) and frequency-based grouping to categorical ones; every
column with missing values also receives a dedicated missing bin.
"""

from repro.binning.base import (
    CATEGORY,
    MISSING,
    MISSING_LABEL,
    OTHER_LABEL,
    RANGE,
    Bin,
    ColumnBinning,
    make_range_bins,
    range_labels,
)
from repro.binning.normalize import normalize_column, normalize_table, normalize_text
from repro.binning.pipeline import (
    BinnedTable,
    BinnedView,
    TableBinner,
    fingerprint_vocab,
    make_token,
    normalize_row_indices,
)
from repro.binning.strategies import (
    EQUAL_WIDTH,
    KDE,
    QUANTILE,
    bin_categorical_column,
    bin_numeric_column,
    equal_width_edges,
    kde_edges,
    quantile_edges,
)

__all__ = [
    "Bin",
    "BinnedTable",
    "BinnedView",
    "CATEGORY",
    "ColumnBinning",
    "EQUAL_WIDTH",
    "KDE",
    "MISSING",
    "MISSING_LABEL",
    "OTHER_LABEL",
    "QUANTILE",
    "RANGE",
    "TableBinner",
    "bin_categorical_column",
    "bin_numeric_column",
    "equal_width_edges",
    "fingerprint_vocab",
    "kde_edges",
    "make_range_bins",
    "make_token",
    "normalize_column",
    "normalize_row_indices",
    "normalize_table",
    "normalize_text",
    "quantile_edges",
    "range_labels",
]
