"""Selection predicates for SP queries.

Predicates evaluate to boolean row masks over a DataFrame and expose the
*query fragments* they reference (column names and selection terms), which
the simulation study (Fig. 6) checks against sub-table contents.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.frame.frame import DataFrame

COLUMN_FRAGMENT = "column"
VALUE_FRAGMENT = "value"


@dataclass(frozen=True)
class Fragment:
    """One reusable piece of a query: a column reference or a selection term.

    For value fragments over numeric columns, ``low``/``high`` describe the
    value region the term selects, so "the sub-table exposed this region"
    can be tested without requiring an exact numeric match.
    """

    kind: str
    column: str
    value: object = None
    low: float | None = None
    high: float | None = None


class Predicate(ABC):
    """A boolean condition over rows."""

    @abstractmethod
    def mask(self, frame: DataFrame) -> np.ndarray:
        """Boolean keep-mask over the rows of ``frame``."""

    @abstractmethod
    def fragments(self) -> list[Fragment]:
        """The query fragments this predicate references."""

    @abstractmethod
    def describe(self) -> str:
        """Human-readable form, e.g. ``DISTANCE > 1500``."""

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class Eq(Predicate):
    """``column == value`` (categorical or numeric equality)."""

    column: str
    value: object

    def mask(self, frame: DataFrame) -> np.ndarray:
        column = frame.column(self.column)
        if column.is_numeric:
            return column.values == float(self.value)
        return np.array([cell == self.value for cell in column.values], dtype=bool)

    def fragments(self) -> list[Fragment]:
        return [
            Fragment(COLUMN_FRAGMENT, self.column),
            Fragment(VALUE_FRAGMENT, self.column, value=self.value),
        ]

    def describe(self) -> str:
        return f"{self.column} == {self.value!r}"


@dataclass(frozen=True)
class InRange(Predicate):
    """``low <= column <= high`` over a numeric column."""

    column: str
    low: float
    high: float

    def mask(self, frame: DataFrame) -> np.ndarray:
        values = frame.column(self.column).values
        with np.errstate(invalid="ignore"):
            return (values >= self.low) & (values <= self.high)

    def fragments(self) -> list[Fragment]:
        return [
            Fragment(COLUMN_FRAGMENT, self.column),
            Fragment(VALUE_FRAGMENT, self.column, low=self.low, high=self.high),
        ]

    def describe(self) -> str:
        return f"{self.low!r} <= {self.column} <= {self.high!r}"


@dataclass(frozen=True)
class Gt(Predicate):
    """``column > threshold`` over a numeric column."""

    column: str
    threshold: float

    def mask(self, frame: DataFrame) -> np.ndarray:
        values = frame.column(self.column).values
        with np.errstate(invalid="ignore"):
            return values > self.threshold

    def fragments(self) -> list[Fragment]:
        return [
            Fragment(COLUMN_FRAGMENT, self.column),
            Fragment(VALUE_FRAGMENT, self.column, low=self.threshold, high=float("inf")),
        ]

    def describe(self) -> str:
        return f"{self.column} > {self.threshold!r}"


@dataclass(frozen=True)
class Lt(Predicate):
    """``column < threshold`` over a numeric column."""

    column: str
    threshold: float

    def mask(self, frame: DataFrame) -> np.ndarray:
        values = frame.column(self.column).values
        with np.errstate(invalid="ignore"):
            return values < self.threshold

    def fragments(self) -> list[Fragment]:
        return [
            Fragment(COLUMN_FRAGMENT, self.column),
            Fragment(VALUE_FRAGMENT, self.column, low=float("-inf"), high=self.threshold),
        ]

    def describe(self) -> str:
        return f"{self.column} < {self.threshold!r}"


@dataclass(frozen=True)
class IsMissing(Predicate):
    """``column IS NULL``."""

    column: str

    def mask(self, frame: DataFrame) -> np.ndarray:
        return frame.column(self.column).missing_mask()

    def fragments(self) -> list[Fragment]:
        return [Fragment(COLUMN_FRAGMENT, self.column)]

    def describe(self) -> str:
        return f"{self.column} IS MISSING"


@dataclass(frozen=True)
class InSet(Predicate):
    """``column IN (v1, v2, ...)`` over a categorical column."""

    column: str
    values: tuple

    def __init__(self, column: str, values: Sequence):
        object.__setattr__(self, "column", column)
        object.__setattr__(self, "values", tuple(values))

    def mask(self, frame: DataFrame) -> np.ndarray:
        allowed = set(self.values)
        column = frame.column(self.column)
        return np.array([cell in allowed for cell in column.values], dtype=bool)

    def fragments(self) -> list[Fragment]:
        fragments = [Fragment(COLUMN_FRAGMENT, self.column)]
        fragments.extend(
            Fragment(VALUE_FRAGMENT, self.column, value=value) for value in self.values
        )
        return fragments

    def describe(self) -> str:
        return f"{self.column} IN {self.values!r}"


def conjunction_mask(predicates: Sequence[Predicate], frame: DataFrame) -> np.ndarray:
    """AND of all predicate masks (all rows when the list is empty)."""
    mask = np.ones(frame.n_rows, dtype=bool)
    for predicate in predicates:
        mask &= predicate.mask(frame)
    return mask
