"""Session replay and fragment-capture evaluation (paper Section 6.2.2).

For every consecutive pair of steps in a session, a selector displays a
sub-table of the *previous* step's result; the study measures the fraction
of the *next* step's query fragments that appear in that sub-table —
"appearance of next-query fragments in the sub-table may imply that the
sub-table is useful in selecting the next exploration step".

Fragment semantics:

* a column fragment is captured when the column is among the sub-table's
  selected columns;
* a categorical selection term is captured when the value is visible in the
  sub-table;
* a numeric selection term (a range) is captured when the sub-table shows
  some value of that column inside the range — the displayed cell is what
  makes the analyst aware of the value region.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.result import SubTable
from repro.queries.predicates import COLUMN_FRAGMENT, Fragment
from repro.queries.session import EDASession


def fragment_captured(subtable: SubTable, fragment: Fragment) -> bool:
    """Whether one query fragment is visible in the sub-table."""
    if fragment.column not in subtable.columns:
        return False
    if fragment.kind == COLUMN_FRAGMENT:
        return True
    if fragment.value is not None:
        return subtable.contains_value(fragment.column, fragment.value)
    if fragment.low is not None or fragment.high is not None:
        low = -math.inf if fragment.low is None else fragment.low
        high = math.inf if fragment.high is None else fragment.high
        column = subtable.frame.column(fragment.column)
        if not column.is_numeric:
            return False
        return any(low <= value <= high for value in column.non_missing_values())
    return False


@dataclass
class ReplayResult:
    """Capture statistics of one selector over a collection of sessions."""

    selector: str
    width: int
    captured: int = 0
    total: int = 0
    failures: int = 0
    per_session: list = field(default_factory=list)

    @property
    def capture_rate(self) -> float:
        return self.captured / self.total if self.total else 0.0


def replay_sessions(
    selector,
    sessions: Sequence[EDASession],
    k: int = 10,
    l: int = 7,
    selector_name: str | None = None,
) -> ReplayResult:
    """Replay ``sessions`` with ``selector`` and measure fragment capture.

    ``selector`` follows the SubTab interface:
    ``select(k, l, query=...) -> SubTable``.  Steps whose state selects no
    rows are skipped (counted in ``failures``).
    """
    name = selector_name or getattr(selector, "name", type(selector).__name__)
    result = ReplayResult(selector=name, width=l)
    for session in sessions:
        session_captured = 0
        session_total = 0
        for previous, nxt in session.consecutive_pairs():
            try:
                subtable = selector.select(k=k, l=l, query=previous.state)
            except ValueError:
                result.failures += 1
                continue
            for fragment in nxt.fragments:
                session_total += 1
                if fragment_captured(subtable, fragment):
                    session_captured += 1
        result.captured += session_captured
        result.total += session_total
        if session_total:
            result.per_session.append(session_captured / session_total)
    return result


def capture_rates_by_width(
    selector,
    sessions: Sequence[EDASession],
    widths: Sequence[int],
    k: int = 10,
) -> dict[int, float]:
    """Fig. 6's x-axis sweep: capture rate per sub-table width."""
    return {
        width: replay_sessions(selector, sessions, k=k, l=width).capture_rate
        for width in widths
    }
