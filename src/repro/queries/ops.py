"""Query operations over DataFrames: SP queries plus group-by and sort.

:class:`SPQuery` (selection-projection) is the query class whose results
SubTab displays interactively (paper Section 5.1: "if the analyst issues a
selection-projection (SP) query on T ... we need only to compute the vector
representation of rows and columns in Q(T)").  It implements the protocol
:meth:`row_indices` / :meth:`output_columns` consumed by
:meth:`repro.core.SubTab.select`.

Group-by and sort operations appear in EDA sessions (Fig. 6's replay); they
are modeled here so sessions can be executed end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.frame.frame import DataFrame
from repro.queries.predicates import (
    COLUMN_FRAGMENT,
    Fragment,
    Predicate,
    conjunction_mask,
)


@dataclass(frozen=True)
class SPQuery:
    """A conjunctive selection followed by a projection.

    ``predicates=()`` selects all rows; ``projection=None`` keeps all columns.
    """

    predicates: tuple = ()
    projection: Optional[tuple] = None

    def __init__(self, predicates: Sequence[Predicate] = (),
                 projection: Optional[Sequence[str]] = None):
        object.__setattr__(self, "predicates", tuple(predicates))
        object.__setattr__(
            self, "projection", None if projection is None else tuple(projection)
        )

    # -- protocol used by SubTab.select -------------------------------------
    def row_indices(self, frame: DataFrame) -> np.ndarray:
        return np.flatnonzero(conjunction_mask(self.predicates, frame))

    def output_columns(self, frame: DataFrame) -> list[str]:
        if self.projection is None:
            return list(frame.columns)
        missing = [name for name in self.projection if name not in frame]
        if missing:
            raise KeyError(f"projection references unknown columns {missing}")
        return list(self.projection)

    # -- execution -------------------------------------------------------------
    def apply(self, frame: DataFrame) -> DataFrame:
        result = frame.take(self.row_indices(frame))
        return result.project(self.output_columns(frame))

    def and_then(self, other: "SPQuery") -> "SPQuery":
        """Compose two SP queries (conjunction of selections, later projection)."""
        projection = other.projection if other.projection is not None else self.projection
        return SPQuery(self.predicates + other.predicates, projection)

    def fragments(self) -> list[Fragment]:
        fragments: list[Fragment] = []
        for predicate in self.predicates:
            fragments.extend(predicate.fragments())
        if self.projection is not None:
            fragments.extend(
                Fragment(COLUMN_FRAGMENT, name) for name in self.projection
            )
        return fragments

    def fingerprint(self) -> str:
        """Injective cache key for the serving layer.

        Content-based (predicates are frozen dataclasses whose repr shows
        their values), and — unlike :meth:`describe` — it distinguishes
        ``projection=None`` (keep all columns) from ``projection=()``
        (keep none, an invalid query), so semantically different queries
        never share a cache slot.
        """
        return f"SPQuery:{(self.predicates, self.projection)!r}"

    def describe(self) -> str:
        where = " AND ".join(p.describe() for p in self.predicates) or "TRUE"
        select = ", ".join(self.projection) if self.projection else "*"
        return f"SELECT {select} WHERE {where}"


@dataclass(frozen=True)
class GroupByOp:
    """GROUP BY ``keys`` with one aggregation (used in EDA sessions)."""

    keys: tuple
    agg_column: str
    agg_func: str = "count"

    def __init__(self, keys: Sequence[str], agg_column: str, agg_func: str = "count"):
        object.__setattr__(self, "keys", tuple(keys))
        object.__setattr__(self, "agg_column", agg_column)
        object.__setattr__(self, "agg_func", agg_func)

    def apply(self, frame: DataFrame) -> DataFrame:
        return frame.group_by(list(self.keys)).agg({self.agg_column: self.agg_func})

    def fragments(self) -> list[Fragment]:
        fragments = [Fragment(COLUMN_FRAGMENT, key) for key in self.keys]
        fragments.append(Fragment(COLUMN_FRAGMENT, self.agg_column))
        return fragments

    def describe(self) -> str:
        return (
            f"GROUP BY {', '.join(self.keys)} "
            f"AGG {self.agg_func}({self.agg_column})"
        )


@dataclass(frozen=True)
class SortOp:
    """ORDER BY one column."""

    column: str
    ascending: bool = True

    def apply(self, frame: DataFrame) -> DataFrame:
        return frame.sort_by(self.column, ascending=self.ascending)

    def fragments(self) -> list[Fragment]:
        return [Fragment(COLUMN_FRAGMENT, self.column)]

    def describe(self) -> str:
        direction = "ASC" if self.ascending else "DESC"
        return f"ORDER BY {self.column} {direction}"
