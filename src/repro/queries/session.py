"""EDA sessions: sequences of exploratory operations over one table.

A session mirrors the structure of the real-life analysis sessions used in
the paper's simulation study (Milo & Somech's 122 recorded sessions over the
cyber-security dataset): a chain of filter / project / group-by / sort
steps.  Each step carries (a) the cumulative selection-projection state —
what SubTab would be asked to display after the step — and (b) the fragments
(columns, selection terms) the step itself references, which the replay
study tests against the previous step's sub-table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.frame.frame import DataFrame
from repro.queries.ops import GroupByOp, SPQuery, SortOp
from repro.queries.predicates import Fragment

FILTER = "filter"
PROJECT = "project"
GROUP_BY = "group_by"
SORT = "sort"

STEP_KINDS = (FILTER, PROJECT, GROUP_BY, SORT)


@dataclass(frozen=True)
class SessionStep:
    """One exploratory operation.

    ``state`` is the cumulative SP query after this step (group-by and sort
    steps observe the data without changing the SP state).
    """

    kind: str
    description: str
    state: SPQuery
    fragments: tuple = ()

    def __post_init__(self):
        if self.kind not in STEP_KINDS:
            raise ValueError(f"unknown step kind {self.kind!r}")


@dataclass
class EDASession:
    """An ordered list of steps over one dataset."""

    dataset: str
    steps: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def consecutive_pairs(self):
        """(previous step, next step) pairs, the unit of the Fig. 6 study."""
        for i in range(len(self.steps) - 1):
            yield self.steps[i], self.steps[i + 1]


class SessionBuilder:
    """Incrementally builds an :class:`EDASession` while tracking SP state."""

    def __init__(self, dataset: str):
        self._session = EDASession(dataset=dataset)
        self._state = SPQuery()

    @property
    def state(self) -> SPQuery:
        return self._state

    def filter(self, predicate) -> "SessionBuilder":
        self._state = SPQuery(
            self._state.predicates + (predicate,), self._state.projection
        )
        self._append(FILTER, predicate.describe(), tuple(predicate.fragments()))
        return self

    def project(self, columns: Sequence[str]) -> "SessionBuilder":
        self._state = SPQuery(self._state.predicates, tuple(columns))
        fragments = tuple(Fragment("column", name) for name in columns)
        self._append(PROJECT, f"PROJECT {', '.join(columns)}", fragments)
        return self

    def group_by(self, keys: Sequence[str], agg_column: str,
                 agg_func: str = "count") -> "SessionBuilder":
        op = GroupByOp(keys, agg_column, agg_func)
        self._append(GROUP_BY, op.describe(), tuple(op.fragments()))
        return self

    def sort(self, column: str, ascending: bool = True) -> "SessionBuilder":
        op = SortOp(column, ascending)
        self._append(SORT, op.describe(), tuple(op.fragments()))
        return self

    def _append(self, kind: str, description: str, fragments: tuple) -> None:
        self._session.steps.append(
            SessionStep(
                kind=kind,
                description=description,
                state=self._state,
                fragments=fragments,
            )
        )

    def build(self) -> EDASession:
        return self._session


def session_result(frame: DataFrame, step: SessionStep) -> DataFrame:
    """Materialize the SP result the analyst is looking at after ``step``."""
    return step.state.apply(frame)
