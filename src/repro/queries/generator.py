"""Synthetic EDA-session generator.

The paper's simulation study replays 122 recorded analyst sessions over the
cyber-security dataset.  Those recordings are not publicly redistributable
offline, so this generator synthesizes sessions with the property the study
depends on: *analysts follow the data* — the values they filter on and the
columns they group by next are drawn from what the current result shows, and
are biased toward the dataset's prominent patterns.  A sub-table that
surfaces real patterns therefore has a better chance of containing the next
step's fragments, which is exactly the mechanism Fig. 6 measures.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.binning.base import MISSING, RANGE
from repro.binning.pipeline import BinnedTable
from repro.queries.ops import SPQuery
from repro.queries.predicates import Eq, InRange
from repro.queries.session import EDASession, SessionBuilder
from repro.utils.rng import ensure_rng

DEFAULT_STEP_WEIGHTS = {
    "filter": 0.45,
    "project": 0.15,
    "group_by": 0.25,
    "sort": 0.15,
}
MIN_RESULT_ROWS = 20


class SessionGenerator:
    """Generates data-driven EDA sessions over one binned table.

    Parameters
    ----------
    binned:
        The binned full table (bins provide realistic numeric filter ranges).
    pattern_columns:
        Columns participating in the dataset's prominent patterns; steps are
        biased toward them with probability ``pattern_bias``.
    pattern_bias:
        Probability that a step references a pattern column.
    """

    def __init__(
        self,
        binned: BinnedTable,
        pattern_columns: Optional[Sequence[str]] = None,
        pattern_bias: float = 0.7,
        step_weights: Optional[dict] = None,
        seed=None,
    ):
        self.binned = binned
        self.frame = binned.frame
        self.pattern_columns = [
            name for name in (pattern_columns or []) if name in self.frame
        ]
        self.pattern_bias = pattern_bias
        weights = dict(DEFAULT_STEP_WEIGHTS)
        if step_weights:
            weights.update(step_weights)
        total = sum(weights.values())
        self._step_kinds = list(weights.keys())
        self._step_probs = np.array([weights[k] for k in self._step_kinds]) / total
        self._rng = ensure_rng(seed)

    # -- public API -------------------------------------------------------------
    def generate(self, n_sessions: int, min_steps: int = 3, max_steps: int = 8,
                 name: str = "synthetic") -> list[EDASession]:
        """Generate ``n_sessions`` sessions of ``min_steps..max_steps`` steps."""
        return [
            self._one_session(
                f"{name}-{i}", int(self._rng.integers(min_steps, max_steps + 1))
            )
            for i in range(n_sessions)
        ]

    # -- internals ---------------------------------------------------------------
    def _one_session(self, name: str, n_steps: int) -> EDASession:
        builder = SessionBuilder(name)
        for _ in range(n_steps):
            kind = self._rng.choice(self._step_kinds, p=self._step_probs)
            if kind == "filter":
                self._add_filter(builder)
            elif kind == "project":
                self._add_project(builder)
            elif kind == "group_by":
                self._add_group_by(builder)
            else:
                self._add_sort(builder)
        return builder.build()

    def _visible_columns(self, state: SPQuery) -> list[str]:
        if state.projection is not None:
            return list(state.projection)
        return list(self.frame.columns)

    def _pick_column(self, candidates: Sequence[str]) -> str:
        candidates = list(candidates)
        patterned = [name for name in candidates if name in self.pattern_columns]
        if patterned and self._rng.random() < self.pattern_bias:
            candidates = patterned
        return candidates[self._rng.integers(0, len(candidates))]

    def _current_rows(self, state: SPQuery) -> np.ndarray:
        return state.row_indices(self.frame)

    def _add_filter(self, builder: SessionBuilder) -> None:
        state = builder.state
        rows = self._current_rows(state)
        if len(rows) < MIN_RESULT_ROWS:
            self._add_sort(builder)  # result already narrow; observe instead
            return
        columns = self._visible_columns(state)
        for _ in range(8):  # retries to keep the result non-trivial
            column_name = self._pick_column(columns)
            predicate = self._draw_predicate(column_name, rows)
            if predicate is None:
                continue
            candidate = SPQuery(
                state.predicates + (predicate,), state.projection
            )
            if len(candidate.row_indices(self.frame)) >= MIN_RESULT_ROWS:
                builder.filter(predicate)
                return
        self._add_sort(builder)

    def _draw_predicate(self, column_name: str, rows: np.ndarray):
        """A predicate on a value the analyst can actually see in the result."""
        column = self.frame.column(column_name)
        row = int(rows[self._rng.integers(0, len(rows))])
        value = column[row]
        binning = self.binned.binnings[column_name]
        bin_ = binning.bins[self.binned.codes[row, self.binned.column_index(column_name)]]
        if bin_.kind == MISSING:
            return None
        if column.is_numeric and bin_.kind == RANGE:
            return InRange(column_name, bin_.low, bin_.high)
        if not column.is_numeric:
            return Eq(column_name, value)
        return None

    def _add_project(self, builder: SessionBuilder) -> None:
        state = builder.state
        columns = self._visible_columns(state)
        if len(columns) <= 3:
            self._add_sort(builder)
            return
        target_width = int(self._rng.integers(3, max(4, len(columns) // 2) + 1))
        chosen: list[str] = []
        pool = list(columns)
        while len(chosen) < target_width and pool:
            pick = self._pick_column(pool)
            chosen.append(pick)
            pool.remove(pick)
        builder.project([name for name in columns if name in chosen])

    def _add_group_by(self, builder: SessionBuilder) -> None:
        columns = self._visible_columns(builder.state)
        categorical = [
            name for name in columns if not self.frame.column(name).is_numeric
        ]
        keys_pool = categorical or columns
        key = self._pick_column(keys_pool)
        numeric = [
            name for name in columns
            if self.frame.column(name).is_numeric and name != key
        ]
        if numeric:
            agg_column = self._pick_column(numeric)
            agg_func = str(self._rng.choice(["mean", "count", "max"]))
        else:
            agg_column = key
            agg_func = "count"
        builder.group_by([key], agg_column, agg_func)

    def _add_sort(self, builder: SessionBuilder) -> None:
        columns = self._visible_columns(builder.state)
        column = self._pick_column(columns)
        builder.sort(column, ascending=bool(self._rng.random() < 0.5))
