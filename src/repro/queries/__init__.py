"""SP query algebra and EDA-session simulation (paper Sections 5.1, 6.2.2).

Public surface::

    from repro.queries import SPQuery, Eq, InRange, SessionGenerator, replay_sessions
"""

from repro.queries.generator import SessionGenerator
from repro.queries.ops import GroupByOp, SPQuery, SortOp
from repro.queries.predicates import (
    COLUMN_FRAGMENT,
    VALUE_FRAGMENT,
    Eq,
    Fragment,
    Gt,
    InRange,
    InSet,
    IsMissing,
    Lt,
    Predicate,
    conjunction_mask,
)
from repro.queries.replay import (
    ReplayResult,
    capture_rates_by_width,
    fragment_captured,
    replay_sessions,
)
from repro.queries.session import (
    EDASession,
    SessionBuilder,
    SessionStep,
    session_result,
)

__all__ = [
    "COLUMN_FRAGMENT",
    "EDASession",
    "Eq",
    "Fragment",
    "GroupByOp",
    "Gt",
    "InRange",
    "InSet",
    "IsMissing",
    "Lt",
    "Predicate",
    "ReplayResult",
    "SPQuery",
    "SessionBuilder",
    "SessionGenerator",
    "SessionStep",
    "SortOp",
    "VALUE_FRAGMENT",
    "capture_rates_by_width",
    "conjunction_mask",
    "fragment_captured",
    "replay_sessions",
    "session_result",
]
