"""Apriori frequent-itemset mining (Agrawal & Srikant 1994).

The paper mines rules with ``efficient-apriori``; that package is not
available offline, so this module implements the classic level-wise Apriori
with two table-specific accelerations:

* items are global token ids of a :class:`~repro.binning.BinnedTable`, so a
  transaction is simply a row of the token-id matrix;
* support counting uses per-item boolean row masks combined with vectorized
  AND — each transaction holds exactly one item per column, so candidate
  itemsets never repeat a column and masks stay sparse in practice.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, Iterable, Tuple

import numpy as np

from repro.binning.pipeline import BinnedTable

ItemsetSupport = Dict[FrozenSet[int], float]


class AprioriResult:
    """Frequent itemsets grouped by size, with supports and row masks."""

    def __init__(self, supports: ItemsetSupport, masks: dict, n_rows: int):
        self.supports = supports
        self._masks = masks
        self.n_rows = n_rows

    def itemsets_of_size(self, size: int) -> list[FrozenSet[int]]:
        return [itemset for itemset in self.supports if len(itemset) == size]

    def support(self, itemset: FrozenSet[int]) -> float:
        return self.supports[itemset]

    def mask(self, itemset: FrozenSet[int]) -> np.ndarray:
        return self._masks[itemset]

    def __len__(self) -> int:
        return len(self.supports)


def _item_masks(binned: BinnedTable) -> dict[int, np.ndarray]:
    """Boolean row mask per token id: where that (column, bin) cell occurs."""
    masks: dict[int, np.ndarray] = {}
    for j in range(binned.n_cols):
        column_tokens = binned.token_ids[:, j]
        for token_id in np.unique(column_tokens):
            masks[int(token_id)] = column_tokens == token_id
    return masks


def _generate_candidates(
    frequent: list[FrozenSet[int]], size: int
) -> Iterable[FrozenSet[int]]:
    """Join step: merge frequent (size-1)-itemsets sharing a (size-2)-prefix."""
    frequent_set = set(frequent)
    sorted_itemsets = sorted(tuple(sorted(itemset)) for itemset in frequent)
    for a_index in range(len(sorted_itemsets)):
        first = sorted_itemsets[a_index]
        for b_index in range(a_index + 1, len(sorted_itemsets)):
            second = sorted_itemsets[b_index]
            if first[:-1] != second[:-1]:
                break  # sorted order: no further prefix matches
            candidate = frozenset(first) | frozenset(second)
            if len(candidate) != size:
                continue
            # Prune step: every (size-1)-subset must itself be frequent.
            if all(
                frozenset(subset) in frequent_set
                for subset in combinations(candidate, size - 1)
            ):
                yield candidate


def mine_frequent_itemsets(
    binned: BinnedTable,
    min_support: float = 0.1,
    max_size: int = 4,
    rows: "np.ndarray | None" = None,
    max_itemsets: int = 200_000,
) -> AprioriResult:
    """Mine all itemsets with support >= ``min_support`` over ``binned``.

    Parameters
    ----------
    rows:
        Optional row subset (used by target-column mining, which splits the
        table by target bin and mines each stratum separately).
    max_itemsets:
        Safety valve for pathologically dense tables; raising past it
        indicates the support threshold is too low for the data.
    """
    if not 0.0 < min_support <= 1.0:
        raise ValueError(f"min_support must be in (0, 1], got {min_support}")
    if max_size < 1:
        raise ValueError(f"max_size must be >= 1, got {max_size}")

    item_masks = _item_masks(binned)
    if rows is not None:
        row_filter = np.zeros(binned.n_rows, dtype=bool)
        row_filter[np.asarray(rows)] = True
        item_masks = {item: mask & row_filter for item, mask in item_masks.items()}
        n_rows = int(row_filter.sum())
    else:
        n_rows = binned.n_rows
    if n_rows == 0:
        return AprioriResult({}, {}, 0)

    min_count = min_support * n_rows
    supports: ItemsetSupport = {}
    masks: dict[FrozenSet[int], np.ndarray] = {}

    level: list[FrozenSet[int]] = []
    for item, mask in item_masks.items():
        count = int(mask.sum())
        if count >= min_count:
            itemset = frozenset([item])
            supports[itemset] = count / n_rows
            masks[itemset] = mask
            level.append(itemset)

    size = 2
    while level and size <= max_size:
        next_level: list[FrozenSet[int]] = []
        for candidate in _generate_candidates(level, size):
            base = min(
                (frozenset(candidate - {item}) for item in candidate),
                key=lambda subset: masks[subset].sum(),
            )
            extra_item = next(iter(candidate - base))
            mask = masks[base] & item_masks[extra_item]
            count = int(mask.sum())
            if count >= min_count:
                supports[candidate] = count / n_rows
                masks[candidate] = mask
                next_level.append(candidate)
                if len(supports) > max_itemsets:
                    raise RuntimeError(
                        f"more than {max_itemsets} frequent itemsets; "
                        "raise min_support or lower max_size"
                    )
        level = next_level
        size += 1

    return AprioriResult(supports, masks, n_rows)


def itemset_to_items(binned: BinnedTable, itemset: FrozenSet[int]) -> FrozenSet[Tuple[str, str]]:
    """Convert token ids back to (column, bin label) item pairs."""
    items = []
    for token_id in itemset:
        column, bin_ = binned.bin_of_token(token_id)
        items.append((column, bin_.label))
    return frozenset(items)
