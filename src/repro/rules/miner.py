"""Rule mining facade (paper Section 6.1 "Metrics implementation").

Defaults follow the paper: support 0.1, confidence 0.6, minimum rule size 3
items.  When target columns are given, the table is split by the binned
values of the targets and rules are mined over each stratum separately, each
stratum contributing rules that conclude the target value; only rules that
mention a target column are retained (the R* filter of Section 3.2).
"""

from __future__ import annotations

from itertools import combinations, product
from typing import Optional, Sequence

import numpy as np

from repro.binning.pipeline import BinnedTable
from repro.rules.apriori import (
    AprioriResult,
    itemset_to_items,
    mine_frequent_itemsets,
)
from repro.rules.rule import AssociationRule

DEFAULT_MIN_SUPPORT = 0.1
DEFAULT_MIN_CONFIDENCE = 0.6
DEFAULT_MIN_RULE_SIZE = 3
DEFAULT_MAX_RULE_SIZE = 4
DEFAULT_MIN_LIFT = 1.2


class RuleMiner:
    """Mines association rules from a binned table.

    Parameters mirror the paper's experimental setup (Section 6.1); the
    parameter-tuning experiment (Fig. 10) varies ``min_support`` and
    ``min_confidence`` through this interface.

    ``min_lift`` implements the paper's *prominence* requirement (footnote 3
    points beyond support/confidence to interest measures a la Omiecinski
    [24]): a rule must exhibit genuine dependence between its sides.  Real
    tables contain near-constant columns — constant years, all-NaN delay
    tails — whose bins co-occur with ~1.0 confidence purely by marginal
    frequency; without a lift floor those combinations dominate the rule set
    (tens of thousands of rules on FL) and the coverage metric degenerates
    to counting columns.  A rule concluding a near-constant bin can still
    survive through a different antecedent/consequent split of the same
    itemset (coverage depends only on the itemset), so genuine patterns like
    "long flights -> not cancelled" are retained via their informative
    splits.  Set ``min_lift=None`` to disable.
    """

    def __init__(
        self,
        min_support: float = DEFAULT_MIN_SUPPORT,
        min_confidence: float = DEFAULT_MIN_CONFIDENCE,
        min_rule_size: int = DEFAULT_MIN_RULE_SIZE,
        max_rule_size: int = DEFAULT_MAX_RULE_SIZE,
        min_lift: "float | None" = DEFAULT_MIN_LIFT,
    ):
        if not 0.0 < min_support <= 1.0:
            raise ValueError(f"min_support must be in (0, 1], got {min_support}")
        if not 0.0 < min_confidence <= 1.0:
            raise ValueError(f"min_confidence must be in (0, 1], got {min_confidence}")
        if min_rule_size < 2:
            raise ValueError(f"min_rule_size must be >= 2, got {min_rule_size}")
        if max_rule_size < min_rule_size:
            raise ValueError("max_rule_size must be >= min_rule_size")
        if min_lift is not None and min_lift <= 0:
            raise ValueError(f"min_lift must be positive or None, got {min_lift}")
        self.min_support = min_support
        self.min_confidence = min_confidence
        self.min_rule_size = min_rule_size
        self.max_rule_size = max_rule_size
        self.min_lift = min_lift

    # -- public API -----------------------------------------------------------
    def mine(
        self,
        binned: BinnedTable,
        targets: Optional[Sequence[str]] = None,
    ) -> list[AssociationRule]:
        """All rules meeting the thresholds; target-focused when requested."""
        if targets:
            return self._mine_with_targets(binned, list(targets))
        result = mine_frequent_itemsets(
            binned, min_support=self.min_support, max_size=self.max_rule_size
        )
        return self._rules_from_itemsets(binned, result)

    # -- untargeted path ---------------------------------------------------------
    def _rules_from_itemsets(
        self, binned: BinnedTable, result: AprioriResult
    ) -> list[AssociationRule]:
        rules: list[AssociationRule] = []
        seen: set[tuple] = set()
        for size in range(self.min_rule_size, self.max_rule_size + 1):
            for itemset in result.itemsets_of_size(size):
                itemset_support = result.support(itemset)
                for antecedent_size in range(1, size):
                    for antecedent_ids in combinations(sorted(itemset), antecedent_size):
                        antecedent = frozenset(antecedent_ids)
                        if antecedent not in result.supports:
                            continue
                        confidence = itemset_support / result.support(antecedent)
                        if confidence < self.min_confidence:
                            continue
                        consequent = itemset - antecedent
                        consequent_support = result.supports.get(consequent)
                        lift = (
                            confidence / consequent_support
                            if consequent_support
                            else float("nan")
                        )
                        if self.min_lift is not None and not lift >= self.min_lift:
                            continue
                        key = (antecedent, frozenset(consequent))
                        if key in seen:
                            continue
                        seen.add(key)
                        rules.append(
                            AssociationRule(
                                antecedent=itemset_to_items(binned, antecedent),
                                consequent=itemset_to_items(binned, consequent),
                                support=itemset_support,
                                confidence=confidence,
                                lift=lift,
                            )
                        )
        return rules

    # -- target-focused path --------------------------------------------------
    def _mine_with_targets(
        self, binned: BinnedTable, targets: list[str]
    ) -> list[AssociationRule]:
        for target in targets:
            binned.column_index(target)  # validate early

        rules: list[AssociationRule] = []
        n_rows = binned.n_rows
        for target_items, stratum_mask in self._target_strata(binned, targets):
            stratum_rows = np.flatnonzero(stratum_mask)
            if len(stratum_rows) == 0:
                continue
            body_size = self.min_rule_size - len(target_items)
            result = mine_frequent_itemsets(
                binned,
                min_support=self.min_support,
                max_size=self.max_rule_size - len(target_items),
                rows=stratum_rows,
            )
            stratum_support = len(stratum_rows) / n_rows
            for itemset, support_in_stratum in result.supports.items():
                if len(itemset) < max(1, body_size):
                    continue
                items = itemset_to_items(binned, itemset)
                if any(column in targets for column, _ in items):
                    continue
                # Confidence of (body -> target value) over the full table:
                # P(stratum | body) = |body ∧ stratum| / |body|.
                body_mask = result.mask(itemset)  # already restricted to stratum
                joint_count = int(body_mask.sum())
                full_body_count = self._count_itemset(binned, items)
                if full_body_count == 0:
                    continue
                confidence = joint_count / full_body_count
                if confidence < self.min_confidence:
                    continue
                lift = (
                    confidence / stratum_support if stratum_support else float("nan")
                )
                if self.min_lift is not None and not lift >= self.min_lift:
                    continue
                rules.append(
                    AssociationRule(
                        antecedent=items,
                        consequent=frozenset(target_items),
                        support=joint_count / n_rows,
                        confidence=confidence,
                        lift=lift,
                    )
                )
        return rules

    def _target_strata(self, binned: BinnedTable, targets: list[str]):
        """Yield ((target items), row mask) for every combination of target bins."""
        per_target_options = []
        for target in targets:
            j = binned.column_index(target)
            binning = binned.binning_of(target)
            options = []
            for bin_index, label in enumerate(binning.labels):
                mask = binned.codes[:, j] == bin_index
                if mask.any():
                    options.append(((target, label), mask))
            per_target_options.append(options)
        for combo in product(*per_target_options):
            items = [item for item, _ in combo]
            mask = np.ones(binned.n_rows, dtype=bool)
            for _, part in combo:
                mask &= part
            yield items, mask

    @staticmethod
    def _count_itemset(binned: BinnedTable, items) -> int:
        mask = np.ones(binned.n_rows, dtype=bool)
        for column, label in items:
            j = binned.column_index(column)
            bin_index = binned.binning_of(column).labels.index(label)
            mask &= binned.codes[:, j] == bin_index
        return int(mask.sum())


def filter_rules_for_targets(
    rules: Sequence[AssociationRule], targets: Optional[Sequence[str]]
) -> list[AssociationRule]:
    """The R* filter: keep rules mentioning at least one target column.

    With no targets, all rules are retained (Section 3.2).
    """
    if not targets:
        return list(rules)
    targets = frozenset(targets)
    return [rule for rule in rules if rule.uses_any_column(targets)]
