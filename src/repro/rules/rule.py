"""Association rules over binned tables (paper Definition 3.4).

An item is a ``(column, bin label)`` pair; a rule states that rows whose
cells fall in the antecedent bins also fall in the consequent bins, e.g.::

    AIR_TIME=long, DISTANCE=long -> CANCELLED=0

Rules are value-level in the paper's model, but Section 3.1 notes that
binning first (replacing values by bin identifiers) yields rules that apply
to many more tuples — that is the form we mine and evaluate.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import FrozenSet, Tuple

import numpy as np

Item = Tuple[str, str]


@dataclass(frozen=True)
class AssociationRule:
    """An association rule with its quality statistics.

    ``support`` is the fraction of table rows satisfying *all* items,
    ``confidence`` is ``support(items) / support(antecedent)`` and ``lift``
    is ``confidence / support(consequent)`` (``nan`` when undefined).
    """

    antecedent: FrozenSet[Item]
    consequent: FrozenSet[Item]
    support: float
    confidence: float
    lift: float = float("nan")

    def __post_init__(self):
        if not self.antecedent:
            raise ValueError("rule antecedent must be non-empty")
        if not self.consequent:
            raise ValueError("rule consequent must be non-empty")
        if self.antecedent & self.consequent:
            raise ValueError("antecedent and consequent must be disjoint")

    @cached_property
    def items(self) -> FrozenSet[Item]:
        """All items of the rule (antecedent plus consequent)."""
        return self.antecedent | self.consequent

    @cached_property
    def columns(self) -> FrozenSet[str]:
        """The set of columns the rule mentions (U_R in the paper)."""
        return frozenset(column for column, _ in self.items)

    @property
    def size(self) -> int:
        """Number of items in the rule."""
        return len(self.antecedent) + len(self.consequent)

    def uses_any_column(self, columns) -> bool:
        """Whether the rule mentions at least one column from ``columns``."""
        return bool(self.columns & frozenset(columns))

    def holds_mask(self, binned) -> np.ndarray:
        """Boolean mask over the rows of ``binned`` where the rule holds (T_R)."""
        mask = np.ones(binned.n_rows, dtype=bool)
        for column, label in self.items:
            j = binned.column_index(column)
            binning = binned.binning_of(column)
            try:
                bin_index = binning.labels.index(label)
            except ValueError:
                # The bin does not exist in this binning: rule never holds.
                return np.zeros(binned.n_rows, dtype=bool)
            mask &= binned.codes[:, j] == bin_index
        return mask

    def __str__(self) -> str:
        def fmt(items):
            return ", ".join(f"{c}={v}" for c, v in sorted(items))

        return (
            f"{fmt(self.antecedent)} -> {fmt(self.consequent)}"
            f"  (supp={self.support:.3f}, conf={self.confidence:.3f})"
        )
