"""Association-rule mining substrate (paper Definition 3.4 / Section 6.1).

Public surface::

    from repro.rules import RuleMiner, AssociationRule, mine_frequent_itemsets

Rules are used to *evaluate* sub-tables (cell coverage) and to drive the
slow, rule-aware baselines; the practical SubTab algorithm never mines rules.
"""

from repro.rules.apriori import (
    AprioriResult,
    itemset_to_items,
    mine_frequent_itemsets,
)
from repro.rules.miner import (
    DEFAULT_MAX_RULE_SIZE,
    DEFAULT_MIN_CONFIDENCE,
    DEFAULT_MIN_RULE_SIZE,
    DEFAULT_MIN_SUPPORT,
    RuleMiner,
    filter_rules_for_targets,
)
from repro.rules.rule import AssociationRule, Item

__all__ = [
    "AprioriResult",
    "AssociationRule",
    "DEFAULT_MAX_RULE_SIZE",
    "DEFAULT_MIN_CONFIDENCE",
    "DEFAULT_MIN_RULE_SIZE",
    "DEFAULT_MIN_SUPPORT",
    "Item",
    "RuleMiner",
    "filter_rules_for_targets",
    "itemset_to_items",
    "mine_frequent_itemsets",
]
