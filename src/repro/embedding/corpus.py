"""Tabular sentence corpus (paper Section 5.1 pre-processing).

The table is serialized into a corpus where each cell is a word (its bin
token).  Two sentence types exist:

* *tuple-sentences* — the tokens of one row, capturing cross-column
  co-occurrence (the signal association rules formalize);
* *column-sentences* — the tokens appearing in one column, capturing the
  value distribution within a column.

The paper caps the corpus at 100K sentences sampled uniformly at random.
Column-sentences over large tables would be enormously long, so we shuffle
each column's cells and split them into fixed-size chunks; with the paper's
window size of max(n, m) (i.e. the whole sentence), chunking only bounds the
co-occurrence neighbourhood, preserving the distributional signal.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.binning.pipeline import BinnedTable
from repro.utils.rng import ensure_rng

ROWS_ONLY = "rows"
ROWS_AND_COLUMNS = "rows+columns"

DEFAULT_MAX_SENTENCES = 100_000
DEFAULT_COLUMN_CHUNK = 50

Sentence = np.ndarray  # 1-D array of token ids


def build_corpus(
    binned: BinnedTable,
    mode: str = ROWS_AND_COLUMNS,
    max_sentences: int = DEFAULT_MAX_SENTENCES,
    column_chunk: int = DEFAULT_COLUMN_CHUNK,
    seed=None,
) -> List[Sentence]:
    """Build the sentence corpus for ``binned``.

    Parameters
    ----------
    mode:
        ``"rows+columns"`` (paper default) or ``"rows"`` (corpus ablation).
    max_sentences:
        Uniform random cap on the corpus size (paper: 100K).
    column_chunk:
        Length of each column-sentence chunk.
    """
    if mode not in (ROWS_ONLY, ROWS_AND_COLUMNS):
        raise ValueError(f"unknown corpus mode {mode!r}")
    if max_sentences < 1:
        raise ValueError("max_sentences must be positive")
    rng = ensure_rng(seed)

    sentences: List[Sentence] = [
        binned.token_ids[i, :].copy() for i in range(binned.n_rows)
    ]
    if mode == ROWS_AND_COLUMNS:
        sentences.extend(_column_sentences(binned, column_chunk, rng))

    if len(sentences) > max_sentences:
        chosen = rng.choice(len(sentences), size=max_sentences, replace=False)
        sentences = [sentences[i] for i in chosen]
    return sentences


def _column_sentences(
    binned: BinnedTable, chunk: int, rng: np.random.Generator
) -> Iterable[Sentence]:
    for j in range(binned.n_cols):
        tokens = binned.token_ids[:, j].copy()
        rng.shuffle(tokens)
        for start in range(0, len(tokens), chunk):
            piece = tokens[start:start + chunk]
            if len(piece) >= 2:
                yield piece


def corpus_token_counts(sentences: List[Sentence], vocab_size: int) -> np.ndarray:
    """Token frequency vector over the corpus (for the SGNS noise distribution)."""
    counts = np.zeros(vocab_size, dtype=np.int64)
    for sentence in sentences:
        np.add.at(counts, sentence, 1)
    return counts
