"""Word2Vec skip-gram with negative sampling (SGNS), in pure numpy.

The paper trains gensim's Word2Vec over the tabular corpus with a window
covering the whole sentence.  gensim is unavailable offline; this module
implements the same objective (Mikolov et al. 2013):

    maximize  log sigma(v_c . v_w) + sum_neg log sigma(-v_n . v_w)

Training is vectorized: (center, context) pairs are pre-sampled from each
sentence (window = whole sentence, bounded by ``context_samples`` draws per
center to keep the pair count linear in corpus size), then processed in
mini-batches with scatter-add updates, which handles repeated tokens within a
batch correctly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.utils.rng import ensure_rng


@dataclass
class Word2VecConfig:
    """Hyper-parameters of the SGNS trainer."""

    dim: int = 32
    epochs: int = 5
    negatives: int = 5
    learning_rate: float = 0.05
    min_learning_rate: float = 0.0001
    context_samples: int = 4
    max_pairs: int = 4_000_000
    batch_size: int = 512
    noise_power: float = 0.75

    def __post_init__(self):
        if self.dim < 1:
            raise ValueError("dim must be positive")
        if self.epochs < 1:
            raise ValueError("epochs must be positive")
        if self.negatives < 1:
            raise ValueError("negatives must be positive")
        if self.context_samples < 1:
            raise ValueError("context_samples must be positive")


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def sample_training_pairs(
    sentences: Sequence[np.ndarray],
    context_samples: int,
    max_pairs: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample (center, context) pairs with whole-sentence windows.

    For each position we draw up to ``context_samples`` context positions
    uniformly from the rest of the sentence.  The result is capped at
    ``max_pairs`` pairs, sub-sampled uniformly.
    """
    centers: list[np.ndarray] = []
    contexts: list[np.ndarray] = []
    for sentence in sentences:
        length = len(sentence)
        if length < 2:
            continue
        draws = min(context_samples, length - 1)
        center_idx = np.repeat(np.arange(length), draws)
        offsets = rng.integers(1, length, size=len(center_idx))
        context_idx = (center_idx + offsets) % length
        centers.append(sentence[center_idx])
        contexts.append(sentence[context_idx])
    if not centers:
        return np.empty((0, 2), dtype=np.int64)
    pairs = np.stack(
        [np.concatenate(centers), np.concatenate(contexts)], axis=1
    ).astype(np.int64)
    if len(pairs) > max_pairs:
        keep = rng.choice(len(pairs), size=max_pairs, replace=False)
        pairs = pairs[keep]
    return pairs


class Word2Vec:
    """Trainable SGNS model over integer token ids.

    After :meth:`train`, ``vectors`` holds the input (center) embeddings —
    the representation used for cells, following common practice.
    """

    def __init__(self, vocab_size: int, config: Word2VecConfig | None = None, seed=None):
        if vocab_size < 1:
            raise ValueError("vocab_size must be positive")
        self.vocab_size = vocab_size
        self.config = config or Word2VecConfig()
        self._rng = ensure_rng(seed)
        scale = 1.0 / self.config.dim
        self.vectors = self._rng.uniform(
            -scale, scale, size=(vocab_size, self.config.dim)
        )
        self._context_vectors = np.zeros((vocab_size, self.config.dim))
        self._noise_cdf: np.ndarray | None = None

    # -- noise distribution ----------------------------------------------------
    def _build_noise(self, token_counts: np.ndarray) -> None:
        weights = np.power(np.maximum(token_counts, 0).astype(np.float64),
                           self.config.noise_power)
        if weights.sum() == 0:
            weights = np.ones(self.vocab_size)
        self._noise_cdf = np.cumsum(weights / weights.sum())

    def _sample_negatives(self, shape) -> np.ndarray:
        uniform = self._rng.random(shape)
        return np.searchsorted(self._noise_cdf, uniform).astype(np.int64)

    # -- training -----------------------------------------------------------------
    def train(self, sentences: Sequence[np.ndarray]) -> "Word2Vec":
        """Train on the corpus; returns ``self`` for chaining."""
        config = self.config
        counts = np.zeros(self.vocab_size, dtype=np.int64)
        for sentence in sentences:
            np.add.at(counts, sentence, 1)
        self._build_noise(counts)

        pairs = sample_training_pairs(
            sentences, config.context_samples, config.max_pairs, self._rng
        )
        if len(pairs) == 0:
            return self

        total_batches = config.epochs * max(1, int(np.ceil(len(pairs) / config.batch_size)))
        batch_counter = 0
        for _ in range(config.epochs):
            order = self._rng.permutation(len(pairs))
            for start in range(0, len(pairs), config.batch_size):
                batch = pairs[order[start:start + config.batch_size]]
                progress = batch_counter / total_batches
                learning_rate = max(
                    config.min_learning_rate,
                    config.learning_rate * (1.0 - progress),
                )
                self._train_batch(batch, learning_rate)
                batch_counter += 1
        return self

    def _train_batch(self, batch: np.ndarray, learning_rate: float) -> None:
        config = self.config
        centers = batch[:, 0]
        contexts = batch[:, 1]
        negatives = self._sample_negatives((len(batch), config.negatives))

        center_vecs = self.vectors[centers]                        # (B, d)
        context_vecs = self._context_vectors[contexts]             # (B, d)
        negative_vecs = self._context_vectors[negatives]           # (B, neg, d)

        # Positive pass: label 1.
        pos_scores = _sigmoid(np.einsum("bd,bd->b", center_vecs, context_vecs))
        pos_error = (pos_scores - 1.0)[:, np.newaxis]               # (B, 1)

        # Negative pass: label 0.
        neg_scores = _sigmoid(
            np.einsum("bnd,bd->bn", negative_vecs, center_vecs)
        )                                                           # (B, neg)

        grad_center = (
            pos_error * context_vecs
            + np.einsum("bn,bnd->bd", neg_scores, negative_vecs)
        )
        grad_context = pos_error * center_vecs
        grad_negative = neg_scores[:, :, np.newaxis] * center_vecs[:, np.newaxis, :]

        # The table vocabulary is tiny relative to the batch, so each token
        # appears many times per batch.  Summed scatter updates computed from
        # stale vectors would multiply the effective step by the repetition
        # count and diverge; averaging per token keeps steps bounded.
        self._apply_mean_update(self.vectors, centers, grad_center, learning_rate)
        self._apply_mean_update(
            self._context_vectors, contexts, grad_context, learning_rate
        )
        self._apply_mean_update(
            self._context_vectors,
            negatives.reshape(-1),
            grad_negative.reshape(-1, config.dim),
            learning_rate,
        )

    def _apply_mean_update(
        self,
        table: np.ndarray,
        token_ids: np.ndarray,
        gradients: np.ndarray,
        learning_rate: float,
    ) -> None:
        """table[token] -= lr * mean of that token's gradients in the batch."""
        accumulated = np.zeros_like(table)
        np.add.at(accumulated, token_ids, gradients)
        counts = np.bincount(token_ids, minlength=table.shape[0]).astype(np.float64)
        touched = counts > 0
        accumulated[touched] /= counts[touched, np.newaxis]
        table -= learning_rate * accumulated

    # -- queries ---------------------------------------------------------------
    def similarity(self, token_a: int, token_b: int) -> float:
        """Cosine similarity between two token vectors."""
        a, b = self.vectors[token_a], self.vectors[token_b]
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        if denom == 0:
            return 0.0
        return float(a @ b / denom)

    def most_similar(self, token: int, top_n: int = 5) -> list[tuple[int, float]]:
        """The ``top_n`` most cosine-similar tokens to ``token``."""
        norms = np.linalg.norm(self.vectors, axis=1)
        norms[norms == 0] = 1.0
        normalized = self.vectors / norms[:, np.newaxis]
        scores = normalized @ normalized[token]
        scores[token] = -np.inf
        best = np.argsort(-scores)[:top_n]
        return [(int(i), float(scores[i])) for i in best]
