"""Count-based alternative embedding: PPMI + truncated SVD.

The paper's future-work section invites exploring other table-embedding
methods.  SGNS is known to implicitly factorize a shifted PMI matrix
(Levy & Goldberg 2014), so a direct PPMI/SVD factorization is the natural
deterministic alternative; it backs the embedding ablation bench.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.embedding.model import CellEmbeddingModel


def cooccurrence_counts(
    sentences: Sequence[np.ndarray], vocab_size: int, max_pairs_per_sentence: int = 64,
    seed: int = 0,
) -> np.ndarray:
    """Symmetric token co-occurrence counts with whole-sentence windows.

    Long sentences are sub-sampled to ``max_pairs_per_sentence`` random pairs
    to keep the construction linear in corpus size.
    """
    rng = np.random.default_rng(seed)
    counts = np.zeros((vocab_size, vocab_size), dtype=np.float64)
    for sentence in sentences:
        length = len(sentence)
        if length < 2:
            continue
        n_pairs = min(max_pairs_per_sentence, length * (length - 1) // 2)
        first = rng.integers(0, length, size=n_pairs)
        shift = rng.integers(1, length, size=n_pairs)
        second = (first + shift) % length
        np.add.at(counts, (sentence[first], sentence[second]), 1.0)
        np.add.at(counts, (sentence[second], sentence[first]), 1.0)
    return counts


def ppmi_matrix(counts: np.ndarray) -> np.ndarray:
    """Positive pointwise mutual information of a co-occurrence matrix."""
    total = counts.sum()
    if total == 0:
        return np.zeros_like(counts)
    row_sums = counts.sum(axis=1, keepdims=True)
    col_sums = counts.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        expected = row_sums @ col_sums / total
        pmi = np.log(np.where(expected > 0, counts * total / (row_sums * col_sums), 1.0))
    pmi[~np.isfinite(pmi)] = 0.0
    return np.maximum(pmi, 0.0)


def train_pmi_embedding(
    sentences: Sequence[np.ndarray],
    vocab: list[str],
    dim: int = 32,
    seed: int = 0,
) -> CellEmbeddingModel:
    """PPMI + truncated SVD embedding over the same corpus as Word2Vec."""
    vocab_size = len(vocab)
    counts = cooccurrence_counts(sentences, vocab_size, seed=seed)
    ppmi = ppmi_matrix(counts)
    dim = min(dim, vocab_size)
    # Vocabulary is small (columns x bins), dense SVD is cheap and exact.
    left, singular_values, _ = np.linalg.svd(ppmi, full_matrices=False)
    vectors = left[:, :dim] * np.sqrt(singular_values[:dim])[np.newaxis, :]
    if vectors.shape[1] < dim:
        pad = np.zeros((vocab_size, dim - vectors.shape[1]))
        vectors = np.hstack([vectors, pad])
    return CellEmbeddingModel(vectors, vocab)
