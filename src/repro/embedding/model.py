"""Cell-vector model M : (cell) -> R^d (paper Algorithm 2, line 4).

Every distinct (column, bin) token has one learned vector; a cell's vector is
its token's vector.  From these the selection step derives:

* *tuple-vectors* — componentwise mean of a row's cell vectors (lines 8-10);
* *column-vectors* — componentwise mean of a column's cell vectors over all
  rows (lines 13-15).

Both are computed directly from the token-id matrix of a
:class:`~repro.binning.BinnedTable` (full table or query-result subset), so
the expensive training is done once and reused for every query — the paper's
key interactivity argument.
"""

from __future__ import annotations

import numpy as np

from repro.binning.pipeline import BinnedTable, fingerprint_vocab


class CellEmbeddingModel:
    """Frozen mapping from token ids to vectors, with row/column pooling."""

    def __init__(self, vectors: np.ndarray, vocab: list[str]):
        if vectors.ndim != 2:
            raise ValueError("vectors must be a 2-D (vocab x dim) array")
        if len(vocab) != vectors.shape[0]:
            raise ValueError(
                f"vocab size {len(vocab)} does not match vectors rows {vectors.shape[0]}"
            )
        self.vectors = np.asarray(vectors, dtype=np.float64)
        self.vocab = list(vocab)
        self.token_to_id = {token: i for i, token in enumerate(vocab)}
        self.vocab_fingerprint = fingerprint_vocab(self.vocab)

    @property
    def dim(self) -> int:
        return self.vectors.shape[1]

    def vector_of(self, token: str) -> np.ndarray:
        """The vector of a token string like ``"DISTANCE=long"``."""
        try:
            return self.vectors[self.token_to_id[token]]
        except KeyError:
            raise KeyError(f"unknown token {token!r}") from None

    def cell_vectors(self, binned: BinnedTable) -> np.ndarray:
        """(n, m, d) array of per-cell vectors for ``binned``."""
        self._check_compatible(binned)
        return self.vectors[binned.token_ids]

    def row_vectors(self, binned: BinnedTable) -> np.ndarray:
        """(n, d) tuple-vectors: mean over the row's cells (Alg. 2 line 9)."""
        self._check_compatible(binned)
        return self.vectors[binned.token_ids].mean(axis=1)

    def column_vectors(self, binned: BinnedTable) -> np.ndarray:
        """(m, d) column-vectors: mean over the column's cells (Alg. 2 line 14)."""
        self._check_compatible(binned)
        return self.vectors[binned.token_ids].mean(axis=0)

    def _check_compatible(self, binned: BinnedTable) -> None:
        """Reject tables whose token ids live in a different token space.

        A bare bounds check is not enough: a table re-binned over a subset of
        columns re-numbers its token ids, and those ids stay *in bounds*
        while meaning entirely different (column, bin) pairs — every lookup
        silently returns another cell's vector.  The vocabulary fingerprint
        catches exactly that class: ids are only trusted when the table's
        vocabulary is (content-)identical to the one this model was trained
        on.  Views created via :meth:`BinnedTable.subset` share their
        parent's vocabulary, so they pass by construction.
        """
        fingerprint = getattr(binned, "vocab_fingerprint", None)
        if fingerprint is not None and fingerprint != self.vocab_fingerprint:
            raise ValueError(
                "binned table's vocabulary does not match the one this model was "
                "trained on; its token ids would index the wrong vectors. Use "
                "BinnedTable.subset() to derive views (they share the parent's "
                "token space) instead of re-binning."
            )
        max_token = int(binned.token_ids.max(initial=0))
        if max_token >= len(self.vocab):
            raise ValueError(
                "binned table references token ids beyond this model's vocabulary; "
                "was it binned with a different TableBinner?"
            )
