"""EmbDI-style graph embedding (Cappuzzo, Papotti, Thirumuruganathan 2020).

The paper uses EmbDI as a slow, high-quality embedding baseline (Fig. 7):
the table becomes a tripartite graph — row nodes, column nodes, and cell
(token) nodes — connected by structural edges; random walks over the graph
form sentences; a word embedding trained on those sentences yields vectors
for all three node types.

We build the graph with networkx and reuse our SGNS trainer.  The walk
corpus is deliberately much larger than SubTab's tabular corpus (that is the
point of the baseline: better structural mixing at a much higher
pre-processing cost), so wall-clock comparisons reproduce the paper's
"26x slower pre-processing" shape.
"""

from __future__ import annotations

import numpy as np
import networkx as nx

from repro.binning.pipeline import BinnedTable
from repro.embedding.model import CellEmbeddingModel
from repro.embedding.word2vec import Word2Vec, Word2VecConfig
from repro.utils.rng import ensure_rng


def build_tripartite_graph(binned: BinnedTable) -> nx.Graph:
    """Row/column/token tripartite graph of a binned table.

    Node ids: ``("row", i)``, ``("col", name)``, ``("tok", token_id)``.
    Edges: each cell links its row node and its column node to its token node.
    """
    graph = nx.Graph()
    for i in range(binned.n_rows):
        graph.add_node(("row", i))
    for name in binned.columns:
        graph.add_node(("col", name))
    for token_id in range(binned.n_tokens):
        graph.add_node(("tok", token_id))
    for j, name in enumerate(binned.columns):
        column_tokens = binned.token_ids[:, j]
        for i in range(binned.n_rows):
            token_node = ("tok", int(column_tokens[i]))
            graph.add_edge(("row", i), token_node)
            graph.add_edge(("col", name), token_node)
    return graph


def random_walks(
    graph: nx.Graph,
    walks_per_node: int = 5,
    walk_length: int = 20,
    seed=None,
) -> list[list]:
    """Uniform random walks starting from every node (node2vec with p=q=1)."""
    rng = ensure_rng(seed)
    nodes = list(graph.nodes)
    neighbor_lists = {node: list(graph.neighbors(node)) for node in nodes}
    walks: list[list] = []
    for node in nodes:
        for _ in range(walks_per_node):
            walk = [node]
            current = node
            for _ in range(walk_length - 1):
                neighbors = neighbor_lists[current]
                if not neighbors:
                    break
                current = neighbors[rng.integers(0, len(neighbors))]
                walk.append(current)
            walks.append(walk)
    return walks


class EmbDIEmbedder:
    """Full EmbDI pipeline: graph -> walks -> SGNS -> cell-vector model.

    ``fit`` returns a :class:`CellEmbeddingModel` over the binned table's
    token vocabulary, directly usable by SubTab's centroid selection — the
    interface parity that lets Fig. 7 compare quality at equal selection
    logic, isolating the embedding choice.
    """

    def __init__(
        self,
        walks_per_node: int = 5,
        walk_length: int = 20,
        config: Word2VecConfig | None = None,
        seed=None,
    ):
        self.walks_per_node = walks_per_node
        self.walk_length = walk_length
        self.config = config or Word2VecConfig()
        self._rng = ensure_rng(seed)

    def fit(self, binned: BinnedTable) -> CellEmbeddingModel:
        graph = build_tripartite_graph(binned)
        walks = random_walks(
            graph,
            walks_per_node=self.walks_per_node,
            walk_length=self.walk_length,
            seed=self._rng,
        )
        # Map heterogeneous nodes to a contiguous id space: tokens first so
        # that token vectors can be sliced out directly afterwards.
        node_ids: dict = {}
        for token_id in range(binned.n_tokens):
            node_ids[("tok", token_id)] = token_id
        for node in graph.nodes:
            if node not in node_ids:
                node_ids[node] = len(node_ids)
        sentences = [
            np.array([node_ids[node] for node in walk], dtype=np.int64)
            for walk in walks
            if len(walk) >= 2
        ]
        model = Word2Vec(len(node_ids), config=self.config, seed=self._rng)
        model.train(sentences)
        token_vectors = model.vectors[: binned.n_tokens]
        return CellEmbeddingModel(token_vectors, binned.vocab)
