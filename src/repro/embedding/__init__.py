"""Table embedding (paper Section 5.1): corpus, SGNS Word2Vec, cell vectors.

Public surface::

    from repro.embedding import (
        build_corpus, Word2Vec, Word2VecConfig, CellEmbeddingModel,
        train_pmi_embedding, EmbDIEmbedder,
    )
"""

from repro.embedding.corpus import (
    DEFAULT_COLUMN_CHUNK,
    DEFAULT_MAX_SENTENCES,
    ROWS_AND_COLUMNS,
    ROWS_ONLY,
    build_corpus,
    corpus_token_counts,
)
from repro.embedding.embdi import (
    EmbDIEmbedder,
    build_tripartite_graph,
    random_walks,
)
from repro.embedding.model import CellEmbeddingModel
from repro.embedding.pmi import (
    cooccurrence_counts,
    ppmi_matrix,
    train_pmi_embedding,
)
from repro.embedding.word2vec import (
    Word2Vec,
    Word2VecConfig,
    sample_training_pairs,
)

__all__ = [
    "CellEmbeddingModel",
    "DEFAULT_COLUMN_CHUNK",
    "DEFAULT_MAX_SENTENCES",
    "EmbDIEmbedder",
    "ROWS_AND_COLUMNS",
    "ROWS_ONLY",
    "Word2Vec",
    "Word2VecConfig",
    "build_corpus",
    "build_tripartite_graph",
    "cooccurrence_counts",
    "corpus_token_counts",
    "ppmi_matrix",
    "random_walks",
    "sample_training_pairs",
    "train_pmi_embedding",
]
