"""The shared scaffolding every reprolint checker builds on.

A checker is a small class with a ``name`` (the rule id reported in
findings and used by ``--select`` and pragma suppression), a one-line
``description`` (shown by ``--list-rules`` and in the README), and a
``scope`` — path parts, any one of which a module's repo-relative path
must contain for the rule to apply (``("serve", "gateway")`` limits a
rule to the serving stack and the HTTP gateway; the empty tuple means
everywhere).  The runner parses each module once,
hands every applicable checker a :class:`ModuleContext`, and collects
:class:`Finding` objects; checkers that need cross-file state (the wire
codec completeness rule) accumulate it in ``check_module`` and emit from
``finalize`` after the walk.

Suppression is by pragma comment on the offending line::

    except Exception:  # reprolint: ignore[error-taxonomy]
    conn = connect()   # reprolint: ignore -- release is the caller's job

A bare ``ignore`` silences every rule on that line; ``ignore[a, b]``
silences only the named rules.  Baseline grandfathering (see
:mod:`repro.analysis.runner`) fingerprints findings without the line
number, so unrelated edits moving a grandfathered finding up or down a
file do not resurface it.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

#: ``# reprolint: ignore`` or ``# reprolint: ignore[rule-a, rule-b]``,
#: optionally followed by ``-- free-text reason``.
_PRAGMA = re.compile(r"#\s*reprolint:\s*ignore(?:\[([^\]]*)\])?")

#: Matches every rule (a bare ``ignore`` pragma).
ALL_RULES = "*"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative POSIX path (what reports and baselines show)
    line: int
    col: int
    symbol: str  # nearest enclosing class/function, "" at module level
    message: str

    @property
    def fingerprint(self) -> tuple:
        """Identity for baseline matching — deliberately line-free, so a
        grandfathered finding survives unrelated edits above it."""
        return (self.rule, self.path, self.symbol, self.message)

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        where = f"{self.path}:{self.line}:{self.col}"
        who = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.rule}{who}: {self.message}"


def parse_pragmas(source: str) -> dict[int, set]:
    """Map 1-based line numbers to the rule ids suppressed on that line."""
    pragmas: dict[int, set] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        rules = match.group(1)
        if rules is None:
            pragmas[lineno] = {ALL_RULES}
        else:
            pragmas[lineno] = {
                rule.strip() for rule in rules.split(",") if rule.strip()
            }
    return pragmas


@dataclass
class ModuleContext:
    """One parsed module, as every checker sees it."""

    path: Path
    display_path: str  # repo-relative POSIX form used in findings
    tree: ast.Module
    pragmas: dict[int, set] = field(default_factory=dict)

    def finding(
        self,
        rule: str,
        node: ast.AST,
        message: str,
        symbol: str = "",
    ) -> Finding:
        return Finding(
            rule=rule,
            path=self.display_path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            symbol=symbol,
            message=message,
        )


class Checker:
    """Base class: one rule, checked module-by-module.

    Subclasses override ``check_module`` (and ``finalize`` for cross-file
    rules).  Checker instances are single-use: the runner constructs a
    fresh set per analysis run, so cross-file state needs no reset hook.
    """

    name: str = ""
    description: str = ""
    #: Path parts, **any one** of which a module's display path must
    #: contain for this rule to apply; empty means every module.
    scope: tuple = ()

    def applies_to(self, display_path: str) -> bool:
        parts = display_path.split("/")
        return not self.scope or any(required in parts
                                     for required in self.scope)

    def check_module(self, ctx: ModuleContext) -> list:
        return []

    def finalize(self) -> list:
        """Findings that need the whole project walked first."""
        return []


# ---------------------------------------------------------------------------
# Small AST utilities shared by the checkers
# ---------------------------------------------------------------------------

def import_table(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted import path, for resolving call targets.

    ``import numpy as np`` maps ``np -> numpy``; ``from queue import
    Queue`` maps ``Queue -> queue.Queue``.  Plain ``import a.b`` binds the
    top-level name ``a`` only, mirroring Python's own binding rule.
    """
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    table[head] = head
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for alias in node.names:
                bound = alias.asname or alias.name
                table[bound] = f"{module}.{alias.name}" if module else alias.name
    return table


def resolve_call(func: ast.AST, table: dict[str, str]) -> Optional[str]:
    """Dotted path of a call target through the module's imports, or
    ``None`` when the base name is not import-bound (a local)."""
    parts = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = table.get(node.id)
    if base is None:
        return None
    if parts:
        return base + "." + ".".join(reversed(parts))
    return base


def walk_scope(root: ast.AST) -> Iterator[ast.AST]:
    """Descendants of ``root`` without entering nested function/class
    definitions (or lambdas) — those are scopes of their own."""
    pending = list(ast.iter_child_nodes(root))
    while pending:
        node = pending.pop()
        yield node
        if isinstance(
            node,
            (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef),
        ):
            continue
        pending.extend(ast.iter_child_nodes(node))


def self_attribute_root(expr: ast.AST, aliases: dict[str, str]) -> Optional[str]:
    """The instance attribute an expression chain is rooted in.

    ``self._entries[key]`` -> ``_entries``; ``member.routed`` where
    ``member`` aliases ``self._members[i]`` -> ``_members``; anything not
    rooted in ``self`` (directly or through ``aliases``) -> ``None``.
    """
    trail = []
    node = expr
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if isinstance(node, ast.Attribute):
            trail.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    if node.id == "self":
        return trail[-1] if trail else None
    return aliases.get(node.id)
