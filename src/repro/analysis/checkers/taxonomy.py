"""Rule ``error-taxonomy``: serving code speaks the typed error hierarchy.

The failover contract in :mod:`repro.serve.errors` only works if errors
keep their types: :class:`BackendError` means "this backend is unusable,
try a replica", :class:`RequestError` means "every replica will fail the
same way, do not retry".  A ``raise Exception(...)`` or a broad
``except Exception:`` that swallows without re-wrapping erases that
signal — the router either retries a doomed request or gives up on a
healthy backend.

Scope: modules whose path contains ``serve``.  Flagged:

* ``raise Exception(...)`` / ``raise RuntimeError(...)`` /
  ``raise BaseException(...)`` — raise a class from
  ``repro.serve.errors`` instead;
* a broad handler (bare ``except:``, ``except Exception``,
  ``except BaseException``, or a tuple containing either) whose body
  neither re-raises, nor references a typed error class (re-wrapping),
  nor builds a ``{"kind": ...}`` wire-reply dict (the socket servers'
  serialized form of the taxonomy), and that is not preceded in the same
  ``try`` by a handler naming a typed error (typed-first, broad-last is
  the sanctioned catch-all shape).
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Checker, ModuleContext, walk_scope

#: The project's typed error vocabulary (serve/errors.py + api/wire.py
#: + the gateway's HTTP-facing refinements in gateway/).
TYPED_ERRORS = {
    "BackendError", "RequestError", "TransportError", "PoolError",
    "PoolWorkerDied", "PoolRequestError", "RemoteServerError",
    "RemoteRequestError", "ClusterError", "PipelineCancelled",
    "WireFormatError",
    "HttpError", "GatewayAuthError", "TenantForbiddenError",
    "TenantConfigError", "AdmissionRejected",
}

_BROAD = {"Exception", "BaseException"}
_UNTYPED_RAISES = {"Exception", "BaseException", "RuntimeError"}


class ErrorTaxonomyChecker(Checker):
    name = "error-taxonomy"
    description = (
        "serve/ and gateway/ code must raise typed errors and re-wrap "
        "or re-raise inside broad `except Exception` handlers"
    )
    scope = ("serve", "gateway")

    def check_module(self, ctx: ModuleContext) -> list:
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Raise):
                findings.extend(self._check_raise(ctx, node))
            elif isinstance(node, ast.Try):
                findings.extend(self._check_try(ctx, node))
        return findings

    def _check_raise(self, ctx, node: ast.Raise) -> list:
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if isinstance(exc, ast.Name) and exc.id in _UNTYPED_RAISES:
            return [ctx.finding(
                self.name,
                node,
                f"raise of untyped {exc.id}; raise a class from "
                f"repro.serve.errors (BackendError for backend-is-down, "
                f"RequestError for never-retry) instead",
            )]
        return []

    def _check_try(self, ctx, node: ast.Try) -> list:
        findings = []
        typed_seen_earlier = False
        for handler in node.handlers:
            broad = self._broadness(handler)
            if broad is None:
                if self._names_typed_error(handler.type):
                    typed_seen_earlier = True
                continue
            if typed_seen_earlier:
                # typed-first, broad-last: the catch-all only sees what
                # the typed clauses above it chose not to claim.
                continue
            if self._handler_is_compliant(handler):
                continue
            findings.append(ctx.finding(
                self.name,
                handler,
                f"broad `{broad}` handler neither re-raises nor re-wraps "
                f"into the typed error hierarchy (repro.serve.errors)",
            ))
        return findings

    @staticmethod
    def _broadness(handler: ast.ExceptHandler):
        """The display form of a too-broad clause, or None if typed."""
        if handler.type is None:
            return "except:"
        names = []
        if isinstance(handler.type, ast.Tuple):
            names = [e.id for e in handler.type.elts
                     if isinstance(e, ast.Name)]
        elif isinstance(handler.type, ast.Name):
            names = [handler.type.id]
        hit = sorted(set(names) & _BROAD)
        if hit:
            return f"except {hit[0]}"
        return None

    @staticmethod
    def _names_typed_error(type_node) -> bool:
        if type_node is None:
            return False
        nodes = (type_node.elts if isinstance(type_node, ast.Tuple)
                 else [type_node])
        for node in nodes:
            name = node.attr if isinstance(node, ast.Attribute) else (
                node.id if isinstance(node, ast.Name) else None)
            if name in TYPED_ERRORS:
                return True
        return False

    @staticmethod
    def _handler_is_compliant(handler: ast.ExceptHandler) -> bool:
        body = ast.Module(body=handler.body, type_ignores=[])
        for node in walk_scope(body):
            if isinstance(node, ast.Raise):
                return True  # re-raise or raise-from re-wrap
            if isinstance(node, ast.Name) and node.id in TYPED_ERRORS:
                return True  # re-wrap: the typed class is referenced
            if (isinstance(node, ast.Attribute)
                    and node.attr in TYPED_ERRORS):
                return True  # errors.BackendError(...) style
            if isinstance(node, ast.Dict):
                # The socket servers encode the taxonomy as a
                # `{"kind": "backend"|"request"|...}` reply dict.
                for key in node.keys:
                    if (isinstance(key, ast.Constant)
                            and key.value == "kind"):
                        return True
        return False
