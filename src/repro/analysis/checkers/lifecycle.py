"""Rule ``resource-lifecycle``: close what you construct.

Backends, pools, servers, and socket clients hold worker processes, file
descriptors, and listening sockets; dropping one on the floor leaks
those until interpreter exit (and in tests, across tests).  This rule
flags constructions of close()-bearing classes that can neither be
released nor escape:

* a construction used as a bare expression statement is always a leak;
* a construction bound to a local name is a leak unless that name later
  appears in a ``with`` item, a ``.close()``/``.stop()``/``.kill()``/
  ``.terminate()``/``.shutdown()`` call, a ``return``/``yield``, a call
  argument (``closing(conn)``, ``stack.enter_context(conn)``, handing it
  to another owner), a container literal, or the right-hand side of an
  attribute/subscript assignment (``self.pool = pool.start()`` — the
  instance owns it now).

Constructions that escape immediately — returned, yielded, passed as an
argument, stored on an attribute, placed in a container, or opened in a
``with`` — are fine: ownership moved to someone who can release them.

Watched constructors: the serving stack's known resource owners plus any
class in the *same module* that defines ``close`` or ``stop``.  The
analysis is name-based and intraprocedural; for a factory helper whose
contract is "caller closes", suppress at the construction site with
``# reprolint: ignore[resource-lifecycle]`` and a reason.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import Checker, ModuleContext, walk_scope

#: Constructors/factories across the project that hand back something
#: the caller must release.
WATCHED_CONSTRUCTORS = {
    "EnginePool", "SocketServer", "AsyncSocketServer", "RemoteBackend",
    "AsyncRemoteBackend", "InProcessBackend", "PoolBackend",
    "ClusterRouter", "artifact_backend", "spawn_artifact_server",
    "spawn_store_server",
    "HttpGateway", "HttpServer", "HttpBackend", "GatewayApp",
    "ResponseCache",
}

_RELEASE_METHODS = {"close", "stop", "kill", "terminate", "shutdown"}


class ResourceLifecycleChecker(Checker):
    name = "resource-lifecycle"
    description = (
        "constructions of close()-bearing classes must be released "
        "(with/try-finally/.close()) or handed to another owner"
    )
    scope = ()

    def check_module(self, ctx: ModuleContext) -> list:
        watched = set(WATCHED_CONSTRUCTORS)
        scopes = [ctx.tree]
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                if any(isinstance(item, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))
                       and item.name in ("close", "stop")
                       for item in node.body):
                    watched.add(node.name)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        findings = []
        for scope in scopes:
            findings.extend(self._check_scope(ctx, scope, watched))
        return findings

    # -- one function (or the module top level) ------------------------------
    def _check_scope(self, ctx, scope, watched) -> list:
        symbol = getattr(scope, "name", "")
        parents: dict[int, ast.AST] = {}
        for node in walk_scope(scope):
            for child in ast.iter_child_nodes(node):
                parents[id(child)] = node
        findings = []
        for node in walk_scope(scope):
            if not isinstance(node, ast.Call):
                continue
            callee = self._terminal_name(node.func)
            if callee not in watched:
                continue
            verdict = self._classify(node, parents, scope)
            if verdict is None:
                continue
            bound_name, construction = verdict
            if bound_name is None:
                findings.append(ctx.finding(
                    self.name, construction,
                    f"{callee}(...) is constructed and immediately "
                    f"dropped; nothing can ever close it",
                    symbol=symbol,
                ))
            elif not self._released(scope, bound_name):
                findings.append(ctx.finding(
                    self.name, construction,
                    f"{callee}(...) bound to '{bound_name}' is never "
                    f"closed, returned, or handed off; guard it with "
                    f"`with`/try-finally or call .close()",
                    symbol=symbol,
                ))
        return findings

    @staticmethod
    def _terminal_name(func: ast.AST):
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute):
            return func.attr
        return None

    def _classify(self, call, parents, scope):
        """None = construction escapes (fine); otherwise
        ``(bound_name_or_None, node_to_report)``."""
        node = call
        while True:
            parent = parents.get(id(node))
            if parent is None or parent is scope:
                return None  # lost track of the context: assume it escapes
            if isinstance(parent, ast.withitem):
                return None
            if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
                return None
            if isinstance(parent, ast.Call) and node is not parent.func:
                return None  # argument of another call: handed off
            if isinstance(parent, (ast.List, ast.Tuple, ast.Set, ast.Dict,
                                   ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp, ast.comprehension)):
                return None  # stored in a container someone else owns
            if isinstance(parent, (ast.Assign, ast.AnnAssign,
                                   ast.NamedExpr)):
                targets = (parent.targets if isinstance(parent, ast.Assign)
                           else [parent.target])
                simple = [t for t in targets if isinstance(t, ast.Name)]
                if len(simple) != len(targets):
                    return None  # attribute/subscript target: owned now
                return (simple[0].id, call) if simple else (None, call)
            if isinstance(parent, ast.Expr):
                return (None, call)  # bare expression statement
            if isinstance(parent, (ast.Call, ast.Attribute, ast.Await,
                                   ast.IfExp, ast.BoolOp, ast.Starred,
                                   ast.keyword)):
                # e.g. `EnginePool(...).start()` — keep climbing to see
                # where the chain's result lands.
                node = parent
                continue
            node = parent

    def _released(self, scope, name: str) -> bool:
        for node in walk_scope(scope):
            if isinstance(node, ast.withitem) and self._mentions(
                    node.context_expr, name):
                return True
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _RELEASE_METHODS
                    and self._mentions(node.func.value, name)):
                return True
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None and self._mentions(node.value,
                                                             name):
                    return True
            if isinstance(node, ast.Call):
                operands = list(node.args) + [kw.value for kw in
                                              node.keywords]
                if any(self._mentions(arg, name) for arg in operands):
                    return True
            if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
                if any(isinstance(e, ast.Name) and e.id == name
                       for e in node.elts):
                    return True
            if isinstance(node, ast.Dict):
                if any(isinstance(v, ast.Name) and v.id == name
                       for v in node.values):
                    return True
            if isinstance(node, ast.Assign):
                if any(isinstance(t, (ast.Attribute, ast.Subscript))
                       for t in node.targets) and self._mentions(
                           node.value, name):
                    return True
        return False

    @staticmethod
    def _mentions(expr: ast.AST, name: str) -> bool:
        return any(isinstance(n, ast.Name) and n.id == name
                   for n in ast.walk(expr))
