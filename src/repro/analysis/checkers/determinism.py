"""Rule ``determinism``: no unseeded or global-state randomness in
``src/repro/``.

The reproduction claim of the source paper rests on bit-identical
replays: the backend-equivalence suite asserts that the in-process,
pooled, socket, and async paths select the *same* sub-table for the same
seeded request stream.  One unseeded RNG — or one draw from the process
-global ``random``/``numpy.random`` state, whose sequence depends on
everything else that ran in the process — silently breaks that
property on some machine, some day.  All randomness must flow through
explicitly seeded generators (see ``repro.utils.rng.ensure_rng``/
``spawn_rng``).

Flagged in modules whose path contains ``repro``:

* ``numpy.random.default_rng()`` / ``RandomState()`` with no seed (or a
  literal ``None``) — entropy-seeded, never replayable;
* ``random.Random()`` with no seed — same;
* any draw from the legacy numpy global state (``np.random.rand``,
  ``.randint``, ``.shuffle``, ``.seed``, ...) or the stdlib ``random``
  module functions (``random.random``, ``.choice``, ``.seed``, ...) —
  even seeded, global state is shared across the process and not
  replayable per-request.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import (
    Checker,
    ModuleContext,
    import_table,
    resolve_call,
)

_NUMPY_GLOBAL_DRAWS = {
    "rand", "randn", "randint", "random", "random_sample", "sample",
    "choice", "shuffle", "permutation", "normal", "uniform", "seed",
    "standard_normal", "beta", "gamma", "poisson", "binomial", "bytes",
}
_STDLIB_GLOBAL_DRAWS = {
    "random", "randint", "choice", "choices", "shuffle", "sample",
    "uniform", "randrange", "seed", "gauss", "betavariate",
    "gammavariate", "randbytes", "getrandbits",
}
_SEEDABLE_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
}


class DeterminismChecker(Checker):
    name = "determinism"
    description = (
        "no unseeded RNG construction or global random/numpy.random "
        "state in src/repro/"
    )
    scope = ("repro",)

    def check_module(self, ctx: ModuleContext) -> list:
        imports = import_table(ctx.tree)
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = resolve_call(node.func, imports)
            if qual is None:
                continue
            message = self._violation(qual, node)
            if message is not None:
                findings.append(ctx.finding(self.name, node, message))
        return findings

    @staticmethod
    def _violation(qual: str, call: ast.Call):
        if qual in _SEEDABLE_CONSTRUCTORS:
            unseeded = not call.args and not call.keywords
            literal_none = (
                call.args
                and isinstance(call.args[0], ast.Constant)
                and call.args[0].value is None
            )
            if unseeded or literal_none:
                return (
                    f"{qual}() without a seed is entropy-seeded and never "
                    f"replayable; thread a seed (repro.utils.rng.ensure_rng)"
                )
            return None
        if qual.startswith("numpy.random."):
            name = qual.rsplit(".", 1)[1]
            if name in _NUMPY_GLOBAL_DRAWS:
                return (
                    f"{qual} draws from numpy's process-global RNG state; "
                    f"use an explicitly seeded Generator instead"
                )
        if qual.startswith("random."):
            name = qual.rsplit(".", 1)[1]
            if name in _STDLIB_GLOBAL_DRAWS:
                return (
                    f"{qual} draws from the stdlib's process-global RNG "
                    f"state; use a seeded random.Random or numpy Generator"
                )
        return None
