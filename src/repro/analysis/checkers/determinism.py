"""Rule ``determinism``: no unseeded or global-state randomness in
``src/repro/``.

The reproduction claim of the source paper rests on bit-identical
replays: the backend-equivalence suite asserts that the in-process,
pooled, socket, and async paths select the *same* sub-table for the same
seeded request stream.  One unseeded RNG — or one draw from the process
-global ``random``/``numpy.random`` state, whose sequence depends on
everything else that ran in the process — silently breaks that
property on some machine, some day.  All randomness must flow through
explicitly seeded generators (see ``repro.utils.rng.ensure_rng``/
``spawn_rng``).

Flagged in modules whose path contains ``repro``:

* ``numpy.random.default_rng()`` / ``RandomState()`` with no seed (or a
  literal ``None``) — entropy-seeded, never replayable;
* ``random.Random()`` with no seed — same;
* any draw from the legacy numpy global state (``np.random.rand``,
  ``.randint``, ``.shuffle``, ``.seed``, ...) or the stdlib ``random``
  module functions (``random.random``, ``.choice``, ``.seed``, ...) —
  even seeded, global state is shared across the process and not
  replayable per-request.

**Strict mode** for ``src/repro/loadgen/`` and the greedy baselines
(``src/repro/baselines/greedy*``): there, even
``repro.utils.rng.ensure_rng()`` with no argument (or a literal
``None``) is flagged.  ``ensure_rng(None)`` deliberately falls back to
fresh entropy — acceptable for exploratory callers, but a load
schedule must be a pure function of its seed (the committed
``BENCH_loadgen.json`` embeds the schedule fingerprint as proof), and
the greedy family feeds the committed quality-vs-latency tradeoff
records (``BENCH_kernel_qps.json``) whose curves must replay from the
recorded seeds — the sampling-based variant re-seeds per select
precisely so every serving topology returns the same sub-table.  The
entropy loophole is closed for both scopes.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch

from repro.analysis.framework import (
    Checker,
    ModuleContext,
    import_table,
    resolve_call,
)

_NUMPY_GLOBAL_DRAWS = {
    "rand", "randn", "randint", "random", "random_sample", "sample",
    "choice", "shuffle", "permutation", "normal", "uniform", "seed",
    "standard_normal", "beta", "gamma", "poisson", "binomial", "bytes",
}
_STDLIB_GLOBAL_DRAWS = {
    "random", "randint", "choice", "choices", "shuffle", "sample",
    "uniform", "randrange", "seed", "gauss", "betavariate",
    "gammavariate", "randbytes", "getrandbits",
}
_SEEDABLE_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "random.Random",
}
#: In strict scopes these seed-or-entropy helpers must get an explicit seed.
_STRICT_CONSTRUCTORS = {
    "repro.utils.rng.ensure_rng",
}


class DeterminismChecker(Checker):
    name = "determinism"
    description = (
        "no unseeded RNG construction or global random/numpy.random "
        "state in src/repro/"
    )
    scope = ("repro",)

    #: Path parts that put a module in strict mode (see module docstring).
    strict_parts = ("loadgen",)
    #: ``fnmatch`` patterns against the display path that also force
    #: strict mode — finer-grained than whole-directory parts (the greedy
    #: modules share ``baselines/`` with selectors that keep the entropy
    #: fallback).
    #: (both spellings: paths are root-relative, so ``repro/`` may sit at
    #: the front or below ``src/``/a fixture root.)
    strict_globs = ("repro/baselines/greedy*", "*/repro/baselines/greedy*")

    def check_module(self, ctx: ModuleContext) -> list:
        imports = import_table(ctx.tree)
        strict = any(
            part in ctx.display_path.split("/") for part in self.strict_parts
        ) or any(
            fnmatch(ctx.display_path, pattern) for pattern in self.strict_globs
        )
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = resolve_call(node.func, imports)
            if qual is None:
                continue
            message = self._violation(qual, node, strict=strict)
            if message is not None:
                findings.append(ctx.finding(self.name, node, message))
        return findings

    @staticmethod
    def _violation(qual: str, call: ast.Call, strict: bool = False):
        if qual in _SEEDABLE_CONSTRUCTORS or (
            strict and qual in _STRICT_CONSTRUCTORS
        ):
            unseeded = not call.args and not call.keywords
            literal_none = (
                call.args
                and isinstance(call.args[0], ast.Constant)
                and call.args[0].value is None
            )
            if unseeded or literal_none:
                if qual in _STRICT_CONSTRUCTORS:
                    return (
                        f"{qual}(None) falls back to fresh entropy; this "
                        f"strict determinism scope (load schedules, greedy "
                        f"tradeoff baselines) requires an explicit seed"
                    )
                return (
                    f"{qual}() without a seed is entropy-seeded and never "
                    f"replayable; thread a seed (repro.utils.rng.ensure_rng)"
                )
            return None
        if qual.startswith("numpy.random."):
            name = qual.rsplit(".", 1)[1]
            if name in _NUMPY_GLOBAL_DRAWS:
                return (
                    f"{qual} draws from numpy's process-global RNG state; "
                    f"use an explicitly seeded Generator instead"
                )
        if qual.startswith("random."):
            name = qual.rsplit(".", 1)[1]
            if name in _STDLIB_GLOBAL_DRAWS:
                return (
                    f"{qual} draws from the stdlib's process-global RNG "
                    f"state; use a seeded random.Random or numpy Generator"
                )
        return None
