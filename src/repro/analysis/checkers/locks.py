"""Rule ``lock-discipline``: attributes mutated under a lock must always
be mutated under it.

For every class that owns a ``threading.Lock``/``RLock``/``Condition``
(assigned to a ``self`` attribute), this checker models which instance
attributes the class mutates inside ``with self.<lock>:`` blocks.  Those
attributes form the class's *guarded set* — the shared state its author
decided needs mutual exclusion.  Any mutation of a guarded attribute
outside the lock (except in ``__init__``, where the object is not yet
shared) is a race waiting for a scheduler to expose it, and is flagged.

Mutations are attribute/subscript stores (``self.hits += 1``,
``self._entries[key] = v``), known mutating method calls
(``self._members.append(...)``, ``.pop``, ``.update``, ...), and the same
through local aliases: ``member = self._members[i]; member.routed += 1``
and ``for member in self._members: member.dead = False`` both count as
mutations rooted in ``_members``.

The model is flow-insensitive and intraprocedural: a helper method that
mutates guarded state while *its caller* holds the lock is still flagged
— hold the lock where the mutation happens (re-entrant ``RLock``) or
suppress with ``# reprolint: ignore[lock-discipline]`` and a reason.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.framework import (
    Checker,
    ModuleContext,
    import_table,
    resolve_call,
    self_attribute_root,
)

#: Call targets whose construction marks a ``self`` attribute as a lock.
_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
}

#: Method names that mutate their receiver in place.
_MUTATORS = {
    "append", "extend", "insert", "add", "update", "remove", "discard",
    "pop", "popitem", "clear", "setdefault", "move_to_end",
    "put", "put_nowait",
}


class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    description = (
        "attributes a class mutates under `with self.<lock>` must never "
        "be mutated outside it (except in __init__)"
    )
    scope = ()

    def check_module(self, ctx: ModuleContext) -> list:
        imports = import_table(ctx.tree)
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(ctx, node, imports))
        return findings

    # -- per-class analysis --------------------------------------------------
    def _check_class(self, ctx, cls: ast.ClassDef, imports) -> list:
        locks = self._lock_attributes(cls, imports)
        if not locks:
            return []
        # (root attribute, node, locked, method name) for every mutation
        # in every method except __init__.
        mutations = []
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__":
                continue
            aliases: dict[str, str] = {}
            self._scan_statements(
                item.body, locked=False, locks=locks, aliases=aliases,
                method=item.name, mutations=mutations,
            )
        guarded = {
            root for root, _node, locked, _method in mutations
            if locked and root not in locks
        }
        findings = []
        for root, node, locked, method in mutations:
            if locked or root not in guarded:
                continue
            findings.append(ctx.finding(
                self.name,
                node,
                f"'{cls.name}.{root}' is mutated under the lock elsewhere "
                f"but mutated here without holding it",
                symbol=f"{cls.name}.{method}",
            ))
        return findings

    def _lock_attributes(self, cls: ast.ClassDef, imports) -> set:
        locks = set()
        for node in ast.walk(cls):
            if not (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)):
                continue
            if resolve_call(node.value.func, imports) not in _LOCK_FACTORIES:
                continue
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    locks.add(target.attr)
        return locks

    # -- statement walk with a locked flag -----------------------------------
    def _scan_statements(self, stmts, locked, locks, aliases, method,
                         mutations):
        for stmt in stmts:
            self._scan_statement(stmt, locked, locks, aliases, method,
                                 mutations)

    def _scan_statement(self, stmt, locked, locks, aliases, method,
                        mutations):
        record = lambda root, node: mutations.append(
            (root, node, locked, method)
        )
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            inner = locked or any(
                self._is_lock_acquire(item.context_expr, locks)
                for item in stmt.items
            )
            self._scan_statements(stmt.body, inner, locks, aliases, method,
                                  mutations)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            root = self_attribute_root(stmt.iter, aliases)
            if root is not None and isinstance(stmt.target, ast.Name):
                # Loop variable aliases elements of a self container.
                aliases[stmt.target.id] = root
            self._scan_statements(stmt.body, locked, locks, aliases, method,
                                  mutations)
            self._scan_statements(stmt.orelse, locked, locks, aliases,
                                  method, mutations)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._scan_statements(stmt.body, locked, locks, aliases, method,
                                  mutations)
            self._scan_statements(stmt.orelse, locked, locks, aliases,
                                  method, mutations)
            return
        if isinstance(stmt, ast.Try):
            self._scan_statements(stmt.body, locked, locks, aliases, method,
                                  mutations)
            for handler in stmt.handlers:
                self._scan_statements(handler.body, locked, locks, aliases,
                                      method, mutations)
            self._scan_statements(stmt.orelse, locked, locks, aliases,
                                  method, mutations)
            self._scan_statements(stmt.finalbody, locked, locks, aliases,
                                  method, mutations)
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scope: not this instance's method body
        # Simple statement: record target stores, alias captures, and
        # mutating method calls anywhere in its expressions.
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._record_store(target, aliases, record)
            self._capture_alias(stmt.targets, stmt.value, aliases)
        elif isinstance(stmt, ast.AugAssign):
            self._record_store(stmt.target, aliases, record)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._record_store(stmt.target, aliases, record)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._record_store(target, aliases, record)
        for node in ast.walk(stmt):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _MUTATORS):
                root = self_attribute_root(node.func.value, aliases)
                if root is not None:
                    record(root, node)

    def _record_store(self, target, aliases, record):
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_store(element, aliases, record)
            return
        if isinstance(target, ast.Starred):
            self._record_store(target.value, aliases, record)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root = self_attribute_root(target, aliases)
            if root is not None:
                record(root, target)

    @staticmethod
    def _capture_alias(targets, value, aliases):
        """``member = self._members[i]`` makes ``member`` an alias whose
        mutations are rooted in ``_members``."""
        root = self_attribute_root(value, aliases)
        if root is None:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                aliases[target.id] = root

    @staticmethod
    def _is_lock_acquire(expr: ast.AST, locks: set) -> bool:
        # `with self._lock:` or `with self._cond:` (Condition) — also
        # accept an explicit `.acquire()`-style context via the bare attr.
        node = expr
        if isinstance(node, ast.Call):  # e.g. contextlib-wrapped; unwrap one
            if node.args and isinstance(node.args[0], ast.Attribute):
                node = node.args[0]
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in locks
        )
