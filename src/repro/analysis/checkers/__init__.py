"""The reprolint rule registry.

Order here is report order; ``--select`` filters by ``Checker.name``.
"""

from repro.analysis.checkers.async_blocking import AsyncBlockingChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.lifecycle import ResourceLifecycleChecker
from repro.analysis.checkers.locks import LockDisciplineChecker
from repro.analysis.checkers.taxonomy import ErrorTaxonomyChecker
from repro.analysis.checkers.wire import WireCompletenessChecker

#: Every rule, in report order.  These are classes: the runner constructs
#: a fresh instance per analysis run, so cross-file checker state never
#: leaks between runs.
ALL_CHECKERS = (
    LockDisciplineChecker,
    AsyncBlockingChecker,
    ErrorTaxonomyChecker,
    ResourceLifecycleChecker,
    WireCompletenessChecker,
    DeterminismChecker,
)

__all__ = [
    "ALL_CHECKERS",
    "AsyncBlockingChecker",
    "DeterminismChecker",
    "ErrorTaxonomyChecker",
    "LockDisciplineChecker",
    "ResourceLifecycleChecker",
    "WireCompletenessChecker",
]
