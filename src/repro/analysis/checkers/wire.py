"""Rule ``wire-completeness``: every dataclass field crosses the wire.

The pool workers and socket servers move requests and responses between
processes as JSON; a field added to ``SelectionRequest`` or
``SelectionResponse`` without a matching codec key silently vanishes at
the first process boundary — the in-process path keeps working, the
distributed paths drop the field, and the backend-equivalence suite only
notices if a test happens to set it.  This rule makes the drift a lint
failure:

* any dataclass defining both ``to_wire`` and ``from_wire`` has its
  declared fields cross-checked against the string keys of ``to_wire``'s
  top-level dict literals and ``from_wire``'s constant subscripts /
  ``.get("...")`` calls (envelope keys ``format``/``wire_version`` are
  codec metadata, not fields, and exempt);
* the :class:`~repro.queries.ops.SPQuery` dataclass lives in a different
  module from its codecs (``encode_query``/``decode_query`` in
  :mod:`repro.api.wire`), so that pair is matched project-wide in
  ``finalize`` (the ``"type"`` discriminator key is exempt).

A missing field yields one finding (anchored at the field declaration)
naming which codec directions lack it; a codec key with no backing field
yields one finding at the class.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.framework import (
    Checker,
    Finding,
    ModuleContext,
    walk_scope,
)

#: Codec metadata keys that are not dataclass fields.
ENVELOPE_KEYS = {"format", "wire_version"}
#: The query codec's discriminator key.
QUERY_TAG_KEYS = {"type"}


def _dict_literal_keys(fn, top_level_only: bool) -> set:
    """String keys of dict literals in ``fn``; with ``top_level_only``,
    dicts nested inside other dict literals are skipped (their keys
    describe nested payloads, not fields)."""
    nested = set()
    if top_level_only:
        for node in walk_scope(fn):
            if isinstance(node, ast.Dict):
                for value in node.values:
                    for sub in ast.walk(value):
                        if isinstance(sub, ast.Dict):
                            nested.add(id(sub))
    keys = set()
    for node in walk_scope(fn):
        if isinstance(node, ast.Dict) and id(node) not in nested:
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(key.value,
                                                                str):
                    keys.add(key.value)
        # d["key"] = value stores count as produced keys too.
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)):
                    keys.add(target.slice.value)
    return keys


def _consumed_keys(fn) -> set:
    """Keys ``fn`` reads: constant subscripts and ``.get("...")``."""
    keys = set()
    for node in walk_scope(fn):
        if (isinstance(node, ast.Subscript)
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)):
            keys.add(node.slice.value)
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)):
            keys.add(node.args[0].value)
    return keys


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for decorator in cls.decorator_list:
        node = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = node.attr if isinstance(node, ast.Attribute) else (
            node.id if isinstance(node, ast.Name) else None)
        if name == "dataclass":
            return True
    return False


def _declared_fields(cls: ast.ClassDef) -> list:
    """(name, AnnAssign node) for every annotated field declaration."""
    fields = []
    for item in cls.body:
        if isinstance(item, ast.AnnAssign) and isinstance(item.target,
                                                          ast.Name):
            annotation = ast.dump(item.annotation)
            if "ClassVar" in annotation:
                continue
            fields.append((item.target.id, item))
    return fields


class WireCompletenessChecker(Checker):
    name = "wire-completeness"
    description = (
        "dataclass fields must appear in their to_wire/from_wire codecs "
        "(and SPQuery in encode_query/decode_query)"
    )
    scope = ()

    def __init__(self) -> None:
        # Cross-file state for the SPQuery <-> api.wire codec pair.
        self._spquery: Optional[tuple] = None  # (ctx-lite, node, fields)
        self._spquery_count = 0
        self._encode_keys: Optional[set] = None
        self._decode_keys: Optional[set] = None

    def check_module(self, ctx: ModuleContext) -> list:
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_dataclass_pair(ctx, node))
                if node.name == "SPQuery":
                    self._spquery_count += 1
                    self._spquery = (
                        ctx.display_path,
                        ctx.pragmas,
                        node,
                        _declared_fields(node),
                    )
            elif isinstance(node, ast.FunctionDef):
                if node.name == "encode_query":
                    self._encode_keys = (
                        _dict_literal_keys(node, top_level_only=True)
                        - QUERY_TAG_KEYS
                    )
                elif node.name == "decode_query":
                    self._decode_keys = _consumed_keys(node) - QUERY_TAG_KEYS
        return findings

    # -- same-module to_wire/from_wire pairs ---------------------------------
    def _check_dataclass_pair(self, ctx, cls: ast.ClassDef) -> list:
        if not _is_dataclass(cls):
            return []
        methods = {
            item.name: item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "to_wire" not in methods or "from_wire" not in methods:
            return []
        produced = (_dict_literal_keys(methods["to_wire"],
                                       top_level_only=True)
                    - ENVELOPE_KEYS)
        consumed = _consumed_keys(methods["from_wire"]) - ENVELOPE_KEYS
        fields = _declared_fields(cls)
        findings = []
        for name, node in fields:
            missing = []
            if name not in produced:
                missing.append("to_wire")
            if name not in consumed:
                missing.append("from_wire")
            if missing:
                findings.append(ctx.finding(
                    self.name, node,
                    f"field '{name}' is absent from "
                    f"{' and '.join(missing)}; it will be dropped at the "
                    f"first process boundary",
                    symbol=cls.name,
                ))
        field_names = {name for name, _ in fields}
        for key in sorted((produced | consumed) - field_names):
            findings.append(ctx.finding(
                self.name, cls,
                f"codec key '{key}' has no backing dataclass field",
                symbol=cls.name,
            ))
        return findings

    # -- cross-file SPQuery <-> encode_query/decode_query --------------------
    def finalize(self) -> list:
        if (self._spquery is None or self._spquery_count != 1
                or self._encode_keys is None or self._decode_keys is None):
            return []
        display_path, pragmas, cls, fields = self._spquery
        findings = []
        for name, node in fields:
            missing = []
            if name not in self._encode_keys:
                missing.append("encode_query")
            if name not in self._decode_keys:
                missing.append("decode_query")
            if missing:
                findings.append(Finding(
                    rule=self.name,
                    path=display_path,
                    line=node.lineno,
                    col=node.col_offset,
                    symbol=cls.name,
                    message=(
                        f"field '{name}' is absent from "
                        f"{' and '.join(missing)} in api/wire.py; queries "
                        f"carrying it will lose it on the wire"
                    ),
                ))
        field_names = {name for name, _ in fields}
        for key in sorted(
                (self._encode_keys | self._decode_keys) - field_names):
            findings.append(Finding(
                rule=self.name,
                path=display_path,
                line=cls.lineno,
                col=cls.col_offset,
                symbol=cls.name,
                message=(
                    f"query codec key '{key}' has no backing SPQuery field"
                ),
            ))
        return findings
