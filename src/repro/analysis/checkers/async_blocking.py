"""Rule ``async-blocking``: no synchronous blocking calls inside
``async def`` bodies.

One blocking call inside a coroutine stalls the entire event loop — in
:mod:`repro.serve.aio` that means every pipelined client on the server
freezes behind one request.  Flagged inside ``async def`` (nested
synchronous ``def`` bodies are their own scope and exempt):

* ``time.sleep(...)`` — use ``await asyncio.sleep(...)``;
* ``socket.create_connection(...)`` and raw-socket ``recv``/
  ``recv_into``/``sendall``/``accept`` calls — use the asyncio stream or
  ``loop.sock_*`` APIs;
* the ``open(...)`` builtin — file I/O blocks; do it before entering the
  coroutine or in ``run_in_executor``;
* ``.get()``/``.put()`` on a ``queue.Queue`` (the *sync* queue —
  ``asyncio.Queue`` is tracked through imports and exempt).

Awaited expressions are never flagged: ``await q.get()`` on an
``asyncio.Queue`` is the point of the API.
"""

from __future__ import annotations

import ast

from repro.analysis.framework import (
    Checker,
    ModuleContext,
    import_table,
    resolve_call,
    walk_scope,
)

_SOCKET_METHODS = {"recv", "recv_into", "sendall", "accept"}
_SYNC_QUEUE_METHODS = {"get", "put"}


class AsyncBlockingChecker(Checker):
    name = "async-blocking"
    description = (
        "no time.sleep / sync socket or file I/O / queue.Queue.get|put "
        "inside `async def` bodies"
    )
    scope = ()

    def check_module(self, ctx: ModuleContext) -> list:
        imports = import_table(ctx.tree)
        # Names bound to sync-queue constructions anywhere in the module
        # (module globals and `self._q = queue.Queue()` attributes alike).
        sync_queues = self._sync_queue_names(ctx.tree, imports)
        findings = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                findings.extend(
                    self._check_coroutine(ctx, node, imports, sync_queues)
                )
        return findings

    @staticmethod
    def _sync_queue_names(tree, imports) -> set:
        names = set()
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Call)):
                continue
            qual = resolve_call(node.value.func, imports)
            if qual not in ("queue.Queue", "queue.LifoQueue",
                            "queue.PriorityQueue", "queue.SimpleQueue"):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, ast.Attribute):
                    names.add(target.attr)
        return names

    def _check_coroutine(self, ctx, fn, imports, sync_queues) -> list:
        awaited = set()
        for node in walk_scope(fn):
            if isinstance(node, ast.Await) and isinstance(node.value,
                                                          ast.Call):
                awaited.add(id(node.value))
        findings = []
        for node in walk_scope(fn):
            if not isinstance(node, ast.Call) or id(node) in awaited:
                continue
            message = self._blocking_reason(node, imports, sync_queues)
            if message is not None:
                findings.append(
                    ctx.finding(self.name, node, message, symbol=fn.name)
                )
        return findings

    @staticmethod
    def _blocking_reason(call, imports, sync_queues):
        qual = resolve_call(call.func, imports)
        if qual == "time.sleep":
            return ("time.sleep blocks the event loop; use "
                    "`await asyncio.sleep(...)`")
        if qual == "socket.create_connection":
            return ("socket.create_connection blocks the event loop; use "
                    "`asyncio.open_connection(...)`")
        if isinstance(call.func, ast.Name) and call.func.id == "open":
            return ("open() blocks the event loop; read the file before "
                    "entering the coroutine or use run_in_executor")
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr in _SOCKET_METHODS:
                return (f"sync socket .{attr}() blocks the event loop; use "
                        "the asyncio stream / loop.sock_* APIs")
            if attr in _SYNC_QUEUE_METHODS:
                receiver = call.func.value
                name = None
                if isinstance(receiver, ast.Name):
                    name = receiver.id
                elif isinstance(receiver, ast.Attribute):
                    name = receiver.attr
                if name in sync_queues:
                    return (f"queue.Queue.{attr}() blocks the event loop; "
                            "use asyncio.Queue")
        return None
