"""reprolint: project-specific static analysis for the serving stack.

Six AST-based rules encode the invariants the distributed serving stack
(PRs 3-5) depends on but no test suite can exhaustively cover:

* ``lock-discipline`` — attributes mutated under ``with self.<lock>``
  must always be mutated under it;
* ``async-blocking`` — no synchronous blocking calls inside coroutines;
* ``error-taxonomy`` — serve/ raises and re-wraps through the typed
  hierarchy in :mod:`repro.serve.errors`;
* ``resource-lifecycle`` — close()-bearing constructions are released or
  handed to an owner;
* ``wire-completeness`` — dataclass fields match their wire codecs;
* ``determinism`` — no unseeded or process-global randomness in
  ``src/repro/``.

Run ``python -m repro.analysis`` (see ``--help``); findings new relative
to ``scripts/analysis_baseline.json`` fail the run.  Stdlib-``ast`` only
— the analysis package adds no runtime dependency.
"""

from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.framework import Checker, Finding, ModuleContext
from repro.analysis.runner import (
    build_checkers,
    diff_baseline,
    load_baseline,
    run_analysis,
)

__all__ = [
    "ALL_CHECKERS",
    "Checker",
    "Finding",
    "ModuleContext",
    "build_checkers",
    "diff_baseline",
    "load_baseline",
    "run_analysis",
]
