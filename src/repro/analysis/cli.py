"""The ``python -m repro.analysis`` command line.

Exit codes: 0 = clean against the baseline, 1 = new findings (or
``--strict`` with any finding at all), 2 = usage error.  The JSON report
(``--format json``) carries every finding plus the new-vs-baseline
split, and is what CI uploads as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.runner import (
    baseline_payload,
    build_checkers,
    diff_baseline,
    load_baseline,
    run_analysis,
)

DEFAULT_BASELINE = Path("scripts") / "analysis_baseline.json"
#: Directories analysed when no paths are given (relative to --root).
DEFAULT_PATHS = (Path("src"), Path("scripts") / "ci")


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "reprolint: project-specific AST invariant checks for the "
            "serving stack (lock discipline, error taxonomy, async "
            "blocking, resource lifecycle, wire completeness, "
            "determinism)"
        ),
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files/directories to analyse (default: src/ and scripts/ci/ "
             "under --root)",
    )
    parser.add_argument(
        "--root", type=Path, default=Path.cwd(),
        help="repository root findings are reported relative to "
             "(default: cwd)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="baseline file grandfathering known findings (default: "
             "<root>/scripts/analysis_baseline.json when it exists)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline to accept the current findings, then "
             "exit 0",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="fail on every finding, baseline included",
    )
    parser.add_argument(
        "--output", type=Path, default=None,
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print every rule with its description and exit",
    )
    return parser


def _emit(text: str, output: Optional[Path]) -> None:
    if output is None:
        sys.stdout.write(text)
        if not text.endswith("\n"):
            sys.stdout.write("\n")
    else:
        output.parent.mkdir(parents=True, exist_ok=True)
        output.write_text(
            text if text.endswith("\n") else text + "\n", encoding="utf-8"
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        lines = [
            f"{checker.name}: {checker.description}"
            for checker in build_checkers()
        ]
        _emit("\n".join(lines), args.output)
        return 0

    root = args.root.resolve()
    paths = [p if p.is_absolute() else root / p for p in args.paths]
    if not paths:
        paths = [root / p for p in DEFAULT_PATHS if (root / p).exists()]
    if not paths:
        parser.error(f"nothing to analyse under {root}")

    select = None
    if args.select:
        select = [name.strip() for name in args.select.split(",")
                  if name.strip()]
    try:
        checkers = build_checkers(select)
    except ValueError as error:
        parser.error(str(error))

    findings, files_checked = run_analysis(root, paths, checkers)

    baseline_path = args.baseline
    if baseline_path is None:
        candidate = root / DEFAULT_BASELINE
        baseline_path = candidate if candidate.is_file() else None
    elif not baseline_path.is_absolute():
        baseline_path = root / baseline_path

    if args.update_baseline:
        target = baseline_path or root / DEFAULT_BASELINE
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(baseline_payload(findings), indent=2) + "\n",
            encoding="utf-8",
        )
        _emit(
            f"baseline updated: {len(findings)} finding(s) recorded in "
            f"{target}",
            args.output,
        )
        return 0

    baseline = load_baseline(baseline_path) if baseline_path else []
    new = diff_baseline(findings, baseline)
    failing = findings if args.strict else new

    if args.format == "json":
        new_ids = {id(finding) for finding in new}
        report = {
            "version": 1,
            "root": str(root),
            "files_checked": files_checked,
            "rules": [checker.name for checker in checkers],
            "baseline": {
                "path": str(baseline_path) if baseline_path else None,
                "entries": len(baseline),
            },
            "findings": [
                {**finding.to_json(), "new": id(finding) in new_ids}
                for finding in findings
            ],
            "new_findings": len(new),
            "ok": not failing,
        }
        _emit(json.dumps(report, indent=2), args.output)
    else:
        new_ids = {id(finding) for finding in new}
        lines = []
        for finding in findings:
            marker = "NEW  " if id(finding) in new_ids else "known"
            lines.append(f"{marker} {finding.render()}")
        lines.append(
            f"{files_checked} file(s) checked, {len(findings)} finding(s), "
            f"{len(new)} new"
            + (f" (baseline: {len(baseline)} grandfathered)"
               if baseline else "")
        )
        _emit("\n".join(lines), args.output)

    return 1 if failing else 0


if __name__ == "__main__":
    sys.exit(main())
