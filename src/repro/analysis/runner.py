"""Walk, parse, check, suppress, and diff against the baseline.

:func:`run_analysis` is the whole pipeline short of I/O formatting: it
walks the requested paths for ``.py`` files, parses each once, runs
every in-scope checker, applies pragma suppression (including to
``finalize`` findings, which anchor to lines in modules walked earlier),
and returns findings sorted by location.  :func:`diff_baseline` then
splits them into grandfathered and *new* relative to a committed
baseline — the CI gate fails on new findings only, so adopting a checker
never requires fixing every historic finding at once.

Baseline fingerprints are line-free (rule, path, symbol, message) and
compared as a multiset: two identical grandfathered findings in one
function stay grandfathered, but a third occurrence is new.
"""

from __future__ import annotations

import ast
import json
from collections import Counter
from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.analysis.checkers import ALL_CHECKERS
from repro.analysis.framework import (
    ALL_RULES,
    Checker,
    Finding,
    ModuleContext,
    parse_pragmas,
)

BASELINE_VERSION = 1
#: Pseudo-rule reported when a file cannot be parsed at all.
PARSE_ERROR_RULE = "parse-error"


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files accepted verbatim),
    skipping hidden directories and ``__pycache__``."""
    seen = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py" and path not in seen:
                seen.add(path)
                yield path
            continue
        if not path.is_dir():
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part == "__pycache__" or part.startswith(".")
                   for part in candidate.relative_to(path).parts):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def display_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def build_checkers(select: Optional[Iterable[str]] = None) -> list:
    """Fresh checker instances, optionally filtered by rule name."""
    wanted = None if select is None else set(select)
    checkers = [cls() for cls in ALL_CHECKERS]
    if wanted is None:
        return checkers
    known = {checker.name for checker in checkers}
    unknown = wanted - known
    if unknown:
        raise ValueError(
            f"unknown rule(s): {', '.join(sorted(unknown))}; "
            f"known rules: {', '.join(sorted(known))}"
        )
    return [checker for checker in checkers if checker.name in wanted]


def run_analysis(
    root: Path,
    paths: Sequence[Path],
    checkers: Optional[Sequence[Checker]] = None,
) -> tuple[list, int]:
    """Analyse every module under ``paths``.

    Returns ``(findings, files_checked)`` with pragma suppression already
    applied and findings sorted by (path, line, rule).
    """
    if checkers is None:
        checkers = build_checkers()
    pragma_maps: dict[str, dict] = {}
    findings: list = []
    files_checked = 0
    for path in iter_python_files(paths):
        files_checked += 1
        shown = display_path(path, root)
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(path))
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            findings.append(Finding(
                rule=PARSE_ERROR_RULE,
                path=shown,
                line=getattr(error, "lineno", 0) or 0,
                col=getattr(error, "offset", 0) or 0,
                symbol="",
                message=f"cannot analyse: {error}",
            ))
            continue
        ctx = ModuleContext(
            path=path,
            display_path=shown,
            tree=tree,
            pragmas=parse_pragmas(source),
        )
        pragma_maps[shown] = ctx.pragmas
        for checker in checkers:
            if checker.applies_to(shown):
                findings.extend(checker.check_module(ctx))
    for checker in checkers:
        findings.extend(checker.finalize())
    findings = [
        finding for finding in findings
        if not _suppressed(finding, pragma_maps)
    ]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule, f.message))
    return findings, files_checked


def _suppressed(finding: Finding, pragma_maps: dict) -> bool:
    pragmas = pragma_maps.get(finding.path, {})
    rules = pragmas.get(finding.line, ())
    return ALL_RULES in rules or finding.rule in rules


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------

def load_baseline(path: Path) -> list:
    """Fingerprints recorded in a baseline file (empty if absent)."""
    if not path.is_file():
        return []
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict) or "findings" not in payload:
        raise ValueError(f"{path} is not a reprolint baseline file")
    entries = []
    for entry in payload["findings"]:
        entries.append((
            entry["rule"], entry["path"], entry.get("symbol", ""),
            entry["message"],
        ))
    return entries


def diff_baseline(findings: Sequence[Finding],
                  baseline: Sequence[tuple]) -> list:
    """The findings not covered by the baseline (multiset semantics)."""
    budget = Counter(baseline)
    new = []
    for finding in findings:
        if budget[finding.fingerprint] > 0:
            budget[finding.fingerprint] -= 1
        else:
            new.append(finding)
    return new


def baseline_payload(findings: Sequence[Finding]) -> dict:
    """The committed-baseline form of a finding set (line-free, sorted,
    so the file diffs cleanly)."""
    entries = [
        {
            "rule": finding.rule,
            "path": finding.path,
            "symbol": finding.symbol,
            "message": finding.message,
        }
        for finding in findings
    ]
    entries.sort(key=lambda e: (e["path"], e["rule"], e["symbol"],
                                e["message"]))
    return {"version": BASELINE_VERSION, "findings": entries}
