"""Hardness artifacts (paper Section 4): reductions and brute-force optima.

Public surface::

    from repro.hardness import (
        dominating_set_to_cell_cover, vertex_cover_to_cell_cover,
        decide_cell_cover, brute_force_opt_subtable,
    )
"""

from repro.hardness.brute_force import (
    BruteForceResult,
    brute_force_max_coverage_rows,
    brute_force_opt_subtable,
)
from repro.hardness.reductions import (
    CellCoverInstance,
    Pattern,
    decide_cell_cover,
    dominating_set_to_cell_cover,
    has_dominating_set,
    has_vertex_cover,
    vertex_cover_to_cell_cover,
)

__all__ = [
    "BruteForceResult",
    "CellCoverInstance",
    "Pattern",
    "brute_force_max_coverage_rows",
    "brute_force_opt_subtable",
    "decide_cell_cover",
    "dominating_set_to_cell_cover",
    "has_dominating_set",
    "has_vertex_cover",
    "vertex_cover_to_cell_cover",
]
