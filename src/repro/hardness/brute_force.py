"""Exact OPT-SUB-TABLE by exhaustive enumeration (tiny inputs only).

Used to validate the greedy baseline's (1 - 1/e) guarantee and to sanity-
check the scorer: the brute-force optimum is the yardstick every approximate
selector is compared against in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Optional, Sequence

from repro.metrics.combined import SubTableScorer

MAX_ENUMERATION = 2_000_000


@dataclass(frozen=True)
class BruteForceResult:
    """The optimal selection and its scores."""

    rows: tuple
    columns: tuple
    cell_coverage: float
    diversity: float
    combined: float


def _count_combinations(n: int, k: int) -> int:
    from math import comb

    return comb(n, min(k, n))


def brute_force_opt_subtable(
    scorer: SubTableScorer,
    k: int,
    l: int,
    alpha: Optional[float] = None,
    targets: Sequence[str] = (),
) -> BruteForceResult:
    """Enumerate every k x l sub-table and return the best combined score.

    Raises :class:`ValueError` when the search space exceeds
    ``MAX_ENUMERATION`` sub-tables — this function exists for ground truth
    on toy tables, exactly the regime the paper's complexity section calls
    infeasible in general.
    """
    binned = scorer.binned
    n, m = binned.n_rows, binned.n_cols
    k = min(k, n)
    targets = list(targets)
    free_columns = [name for name in binned.columns if name not in targets]
    n_free = l - len(targets)
    if n_free < 0:
        raise ValueError("more target columns than l")
    n_free = min(n_free, len(free_columns))

    total = _count_combinations(n, k) * _count_combinations(len(free_columns), n_free)
    if total > MAX_ENUMERATION:
        raise ValueError(
            f"{total} candidate sub-tables exceed the enumeration cap "
            f"{MAX_ENUMERATION}; use a smaller table"
        )

    if alpha is not None and alpha != scorer.alpha:
        scorer = SubTableScorer(
            binned, rules=scorer.rules, targets=targets or None, alpha=alpha
        )

    best: Optional[BruteForceResult] = None
    for column_combo in combinations(free_columns, n_free):
        columns = [
            name for name in binned.columns
            if name in set(column_combo) | set(targets)
        ]
        for rows in combinations(range(n), k):
            scores = scorer.score(list(rows), columns)
            if best is None or scores.combined > best.combined:
                best = BruteForceResult(
                    rows=rows,
                    columns=tuple(columns),
                    cell_coverage=scores.cell_coverage,
                    diversity=scores.diversity,
                    combined=scores.combined,
                )
    assert best is not None
    return best


def brute_force_max_coverage_rows(
    scorer: SubTableScorer,
    columns: Sequence[str],
    k: int,
) -> tuple[tuple, float]:
    """Optimal k rows for *fixed* columns under cell coverage alone."""
    n = scorer.binned.n_rows
    k = min(k, n)
    if _count_combinations(n, k) > MAX_ENUMERATION:
        raise ValueError("row enumeration too large; use a smaller table")
    best_rows: tuple = ()
    best_cov = -1.0
    for rows in combinations(range(n), k):
        cov = scorer.evaluator.coverage(list(rows), columns)
        if cov > best_cov:
            best_cov = cov
            best_rows = rows
    return best_rows, best_cov
