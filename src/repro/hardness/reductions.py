"""Executable reductions behind the paper's hardness results (Section 4.1).

Proposition 4.1 reduces Dominating Set to DEC-CELL-COVER (W[2]-hardness in
k); Proposition 4.2 reduces Vertex Cover with max degree 3 to the case of
O(1) attributes (NP-hardness in k).  Both proofs use degenerate association
rules with an empty consequent — single-item patterns — so this module
carries a minimal, self-contained pattern/coverage model matching
Definition 3.6 for that special case, plus brute-force deciders used by the
property tests to verify each reduction end to end on random graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Optional, Sequence

import networkx as nx
import numpy as np


@dataclass(frozen=True)
class Pattern:
    """A single-item pattern {column = value} -> {} (degenerate rule)."""

    column: int
    value: int


@dataclass
class CellCoverInstance:
    """A DEC-CELL-COVER instance with single-item patterns.

    ``table`` is an integer matrix where -1 encodes NULL.  ``patterns`` are
    the degenerate rules; ``k`` rows must be selected (all columns are kept,
    matching both reductions); ``threshold`` is the coverage target in cells.
    """

    table: np.ndarray
    patterns: list
    k: int
    threshold: int

    def pattern_cells(self, pattern: Pattern) -> int:
        """|cell(P, T)|: rows matching the pattern, times its one column."""
        return int((self.table[:, pattern.column] == pattern.value).sum())

    def covered_cells(self, rows: Sequence[int]) -> int:
        """Cells covered by the sub-table made of ``rows`` (all columns)."""
        rows = np.asarray(rows, dtype=np.int64)
        total = 0
        for pattern in self.patterns:
            column = self.table[:, pattern.column]
            if (column[rows] == pattern.value).any():
                total += int((column == pattern.value).sum())
        return total

    def total_coverable(self) -> int:
        """upcov: cells covered when every pattern is covered."""
        return self.covered_cells(np.arange(self.table.shape[0]))


def decide_cell_cover(instance: CellCoverInstance) -> Optional[tuple]:
    """Brute-force DEC-CELL-COVER: a witness row set, or None.

    Exponential in k — usable only on the small instances of the tests,
    which is the point: the reduction's correctness, not its speed.
    """
    n = instance.table.shape[0]
    for rows in combinations(range(n), min(instance.k, n)):
        if instance.covered_cells(rows) >= instance.threshold:
            return rows
    return None


# -- Proposition 4.1: Dominating Set ----------------------------------------

def dominating_set_to_cell_cover(graph: nx.Graph, k: int) -> CellCoverInstance:
    """Build the DEC-CELL-COVER instance of Proposition 4.1.

    One row and one column per vertex; cell (v, u) is 1 when u = v or
    (u, v) is an edge, NULL otherwise; one pattern per column; the
    threshold asks for *all* non-NULL cells — achievable by k rows iff the
    graph has a dominating set of size k.
    """
    nodes = list(graph.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    table = np.full((n, n), -1, dtype=np.int64)
    for v in nodes:
        table[index[v], index[v]] = 1
        for u in graph.neighbors(v):
            table[index[v], index[u]] = 1
    patterns = [Pattern(column=j, value=1) for j in range(n)]
    instance = CellCoverInstance(table=table, patterns=patterns, k=k, threshold=0)
    instance.threshold = instance.total_coverable()
    return instance


def has_dominating_set(graph: nx.Graph, k: int) -> bool:
    """Brute-force Dominating Set decider (ground truth for tests)."""
    nodes = list(graph.nodes)
    if k >= len(nodes):
        return True
    for subset in combinations(nodes, k):
        dominated = set(subset)
        for v in subset:
            dominated.update(graph.neighbors(v))
        if len(dominated) == len(nodes):
            return True
    return False


# -- Proposition 4.2: Vertex Cover, O(1) attributes ---------------------------

N_ATTRIBUTES = 5


def _assign_edge_attributes(graph: nx.Graph) -> dict:
    """Assign each edge one of 5 attributes, free at both endpoints.

    With maximum degree 3, each endpoint's other edges occupy at most 4
    attributes in total, so a fifth is always available (the proof's
    argument); greedy first-fit realizes it.
    """
    used: dict = {node: set() for node in graph.nodes}
    assignment: dict = {}
    for edge in graph.edges:
        u, v = edge
        free = [
            a for a in range(N_ATTRIBUTES)
            if a not in used[u] and a not in used[v]
        ]
        if not free:
            raise ValueError(
                "no free attribute: graph exceeds the degree-3 bound of Prop. 4.2"
            )
        attribute = free[0]
        assignment[(u, v)] = attribute
        assignment[(v, u)] = attribute
        used[u].add(attribute)
        used[v].add(attribute)
    return assignment


def vertex_cover_to_cell_cover(graph: nx.Graph, k: int) -> CellCoverInstance:
    """Build the 5-attribute DEC-CELL-COVER instance of Proposition 4.2.

    One row per vertex; each edge e = (u, v) writes its serial number into
    one shared attribute of rows u and v; one pattern per edge; covering all
    non-NULL cells with k rows is possible iff a k-vertex cover exists.
    """
    if graph.number_of_nodes() and max(dict(graph.degree).values(), default=0) > 3:
        raise ValueError("Proposition 4.2's reduction requires max degree <= 3")
    nodes = list(graph.nodes)
    index = {node: i for i, node in enumerate(nodes)}
    assignment = _assign_edge_attributes(graph)
    table = np.full((len(nodes), N_ATTRIBUTES), -1, dtype=np.int64)
    patterns = []
    for serial, (u, v) in enumerate(graph.edges, start=1):
        attribute = assignment[(u, v)]
        table[index[u], attribute] = serial
        table[index[v], attribute] = serial
        patterns.append(Pattern(column=attribute, value=serial))
    instance = CellCoverInstance(table=table, patterns=patterns, k=k, threshold=0)
    instance.threshold = instance.total_coverable()
    return instance


def has_vertex_cover(graph: nx.Graph, k: int) -> bool:
    """Brute-force Vertex Cover decider (ground truth for tests)."""
    nodes = list(graph.nodes)
    edges = list(graph.edges)
    if not edges:
        return True
    if k >= len(nodes):
        return True
    for subset in combinations(nodes, k):
        chosen = set(subset)
        if all(u in chosen or v in chosen for u, v in edges):
            return True
    return False
