"""Ablation benches for the design choices DESIGN.md calls out.

Not part of the paper's evaluation — these isolate our reconstruction's
moving parts:

* embedding method: tabular Word2Vec (default) vs deterministic PPMI+SVD;
* sentence corpus: tuple-sentences only (our default) vs the paper's
  tuple+column sentences, which over a *binned* table pull same-column bins
  together (see repro.core.config);
* column stage: dispersion-weighted budget (our default) vs the literal
  one-representative-per-cluster rule of Algorithm 2;
* binning strategy: KDE (paper) vs equal-width vs quantile.

Each bench prints the combined score per variant and asserts only sanity
(scores in range, experiments complete); the numbers are recorded in
EXPERIMENTS.md.
"""

import pytest

from repro.bench import format_table, load_bundle
from repro.bench.harness import make_selector
from repro.binning import TableBinner
from repro.core.config import SubTabConfig

DATASET = "spotify"
ROWS = 1500


@pytest.fixture(scope="module")
def bundle():
    return load_bundle(DATASET, n_rows=ROWS, seed=0)


def score_config(bundle, config) -> tuple:
    selector = make_selector("subtab", bundle, seed=0, subtab_config=config)
    subtable = selector.select(k=10, l=10)
    scores = bundle.scorer().score(subtable.row_indices, subtable.columns)
    return scores.cell_coverage, scores.diversity, scores.combined


def test_ablation_embedding_method(benchmark, bundle, capsys):
    def run():
        rows = []
        for embedder in ("word2vec", "pmi"):
            cov, div, comb = score_config(
                bundle, SubTabConfig(seed=0, embedder=embedder)
            )
            rows.append([embedder, cov, div, comb])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            f"Ablation: embedding method ({DATASET})",
            ["embedder", "coverage", "diversity", "combined"], rows,
        ))
    for _, cov, div, comb in rows:
        assert 0.0 <= comb <= 1.0
        assert comb > 0.3  # both embedders must be functional


def test_ablation_corpus_mode(benchmark, capsys):
    """Corpus choice is dataset-dependent (see DESIGN.md section 5).

    Column-sentences hurt on the wide, missing-heavy FL (same-column bins
    are pulled together) and help mildly on the narrow SP; this bench
    records both so the default (rows-only) stays justified by the
    flagship dataset without hiding the trade-off.
    """

    def run():
        rows = []
        for dataset in ("flights", DATASET):
            ds_bundle = load_bundle(dataset, n_rows=ROWS, seed=0)
            for mode in ("rows", "rows+columns"):
                cov, div, comb = score_config(
                    ds_bundle, SubTabConfig(seed=0, corpus_mode=mode)
                )
                rows.append([dataset, mode, cov, div, comb])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            "Ablation: sentence corpus (flights + spotify)",
            ["dataset", "corpus", "coverage", "diversity", "combined"], rows,
        ))
    by_key = {(row[0], row[1]): row[4] for row in rows}
    # the motivating case: rows-only must not lose on flights
    assert by_key[("flights", "rows")] >= by_key[("flights", "rows+columns")] - 0.05
    for value in by_key.values():
        assert 0.0 <= value <= 1.0


def test_ablation_selection_modes(benchmark, bundle, capsys):
    def run():
        rows = []
        for column_mode in ("dispersion", "centroid"):
            for row_mode in ("cluster", "mass"):
                cov, div, comb = score_config(
                    bundle,
                    SubTabConfig(seed=0, column_mode=column_mode, row_mode=row_mode),
                )
                rows.append([f"{column_mode}/{row_mode}", cov, div, comb])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            f"Ablation: column/row budget modes ({DATASET})",
            ["column/row mode", "coverage", "diversity", "combined"], rows,
        ))
    for _, cov, div, comb in rows:
        assert 0.0 <= comb <= 1.0


def test_ablation_binning_strategy(benchmark, capsys):
    def run():
        rows = []
        for strategy in ("kde", "width", "quantile"):
            bundle = load_bundle(DATASET, n_rows=ROWS, seed=0)
            rebinned = TableBinner(strategy=strategy, seed=0).bin_table(bundle.frame)
            bundle.binned = rebinned
            bundle._scorers.clear()
            cov, div, comb = score_config(
                bundle, SubTabConfig(seed=0, bin_strategy=strategy)
            )
            rows.append([strategy, cov, div, comb])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(
            f"Ablation: binning strategy ({DATASET})",
            ["strategy", "coverage", "diversity", "combined"], rows,
        ))
    for _, cov, div, comb in rows:
        assert 0.0 <= comb <= 1.0
