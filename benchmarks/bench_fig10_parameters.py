"""Figure 10 — robustness of the comparison to rule-mining parameters.

Paper setup: sub-tables are computed once (the algorithms take no rules as
input); the evaluation rule set is then re-mined while varying one
parameter at a time — #bins in {5, 7, 10}, support threshold in
{0.1, 0.2, 0.3}, confidence threshold in {0.5, 0.6, 0.7, 0.8} — and cell
coverage re-measured, averaged over FL and SP.

Paper findings: coverage moderately decreases with more bins and slightly
with stricter support/confidence, but the *ranking* (SubTab >> RAN > NC)
and the relative gaps persist across all settings.

Reproduction target: SubTab's coverage stays above NC's in every setting,
and SubTab's coverage does not grow when bins increase.
"""

from repro.bench import run_parameter_tuning_experiment


def test_fig10_parameter_tuning(benchmark, once, capsys):
    result = once(
        benchmark,
        run_parameter_tuning_experiment,
        n_rows=1500,
        ran_budget=2.0,
        seed=0,
    )
    with capsys.disabled():
        print()
        print(result.render())

    for series in (result.by_bins, result.by_support, result.by_confidence):
        for x in series["SubTab"]:
            assert series["SubTab"][x] >= series["NC"][x] - 0.02, (series, x)
    # more bins -> rules hold for fewer tuples -> coverage cannot rise much
    bins = sorted(result.by_bins["SubTab"].keys())
    assert result.by_bins["SubTab"][bins[-1]] <= result.by_bins["SubTab"][bins[0]] + 0.05
