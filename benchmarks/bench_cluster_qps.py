"""Cluster serving throughput — consistent-hash members over sockets.

The multi-host claim, staged on one machine: the fitted artifact makes
spinning up a serving *member* cheap (each is a subprocess socket server
whose engine ``Engine.load``-s the shared artifact), and consistent-hash
routing shards the request stream so the ring's aggregate selection-LRU
capacity is ``members x cache_size``.  This benchmark serves the same
cyclic session workload — more distinct states than one member's LRU
holds — through clusters of 1, 2, and 4 members and records each ring's
aggregate QPS next to the single-warm-engine baseline and the committed
single-host pool numbers (``BENCH_pool_qps.json``).

On a single-core host the scaling is pure cache sharding plus pipelined
socket I/O (members time-share the CPU); on multi-host deployments CPU
parallelism compounds it.

Output: ``benchmarks/out/bench_cluster_qps.json`` (override the directory
with ``REPRO_BENCH_OUT``).  The committed trajectory record lives at the
repo root as ``BENCH_cluster_qps.json``.

Reproduction target: the 4-member ring clearly out-serves the 1-member
ring on the LRU-adversarial workload, with the full ring absorbing the
repeated rounds in its sharded LRUs.
"""

import json
import os
from pathlib import Path

from repro.bench import run_cluster_qps_experiment

DEFAULT_OUT_DIR = Path(__file__).resolve().parent / "out"
POOL_REFERENCE = Path(__file__).resolve().parent.parent / "BENCH_pool_qps.json"


def _out_path() -> Path:
    out_dir = Path(os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT_DIR))
    out_dir.mkdir(parents=True, exist_ok=True)
    return out_dir / "bench_cluster_qps.json"


def test_cluster_qps_scaling(benchmark, once, capsys):
    result = once(
        benchmark,
        run_cluster_qps_experiment,
        dataset_name="cyber",
        n_sessions=12,
        n_rows=1500,
        k=10,
        l=7,
        seed=0,
        member_counts=(1, 2, 4),
        rounds=6,
        pool_reference_path=str(POOL_REFERENCE),
    )
    with capsys.disabled():
        print()
        print(result.render())

    payload = result.to_json()
    path = _out_path()
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    with capsys.disabled():
        print(f"wrote {path}")

    # The ring must actually shard: the workload overflows one member's
    # LRU, every member of the full ring serves, nothing fails over, and
    # aggregate throughput grows with the member count.
    assert result.n_states > result.cache_size, (
        "workload too small to stress a single member's LRU"
    )
    for count in result.member_counts:
        record = result.members[str(count)]
        assert record["served"] == result.baseline["served"]
        assert record["errors"] == 0
        assert record["failovers"] == 0
    full = result.members[str(max(result.member_counts))]
    assert all(served > 0 for served in full["per_member"].values()), (
        f"idle members: {full['per_member']}"
    )
    scaling = result.scaling[str(max(result.member_counts))]
    assert scaling >= 1.5, (
        f"4-member ring is only {scaling:.2f}x the 1-member ring "
        f"({full['qps']:.1f} vs {result.qps(result.member_counts[0]):.1f} QPS)"
    )
