"""Figure 8 — diversity / cell coverage / combined per dataset and selector.

Paper numbers (alpha = 0.5): SubTab achieves the best combined score on FL,
SP and CY (e.g. SP: SubTab 0.68, RAN 0.47, NC 0.51); on FL and CY it also
has the best diversity, while on SP RAN is slightly more diverse but with
far lower coverage.

Reproduction target: SubTab's combined score is the best or statistically
tied with RAN's on every dataset, and strictly above NC's.  (Our RAN is a
draw-bounded direct optimizer of the evaluation metric — see
``repro.baselines.random_search`` — which makes it a stronger baseline at
benchmark scale than the paper's; margins are therefore tighter.)
"""

from repro.bench import run_quality_experiment


def test_fig8_quality_metrics(benchmark, once, capsys):
    result = once(
        benchmark,
        run_quality_experiment,
        dataset_names=("flights", "spotify", "cyber"),
        n_rows=1500,
        ran_budget=2.0,
        seed=0,
    )
    with capsys.disabled():
        print()
        print(result.render())

    for dataset, per_selector in result.scores.items():
        subtab = per_selector["SubTab"]
        ran = per_selector["RAN"]
        nc = per_selector["NC"]
        assert subtab.combined > nc.combined, dataset
        assert subtab.combined >= ran.combined - 0.06, dataset
        assert subtab.cell_coverage > nc.cell_coverage, dataset
