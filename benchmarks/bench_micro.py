"""Micro-benchmarks of the performance-critical substrates.

These time the inner loops that determine SubTab's interactive latency
(Fig. 9's story): binning, corpus + SGNS training, rule mining, coverage
evaluation, and one centroid selection.  Useful for catching performance
regressions independently of the figure-level experiments.
"""

import pytest

from repro.bench import load_bundle
from repro.binning import TableBinner
from repro.core import SubTab, SubTabConfig
from repro.embedding import Word2Vec, Word2VecConfig, build_corpus
from repro.metrics import CoverageEvaluator
from repro.rules import RuleMiner

ROWS = 1500


@pytest.fixture(scope="module")
def bundle():
    return load_bundle("cyber", n_rows=ROWS, seed=0)


@pytest.fixture(scope="module")
def fitted(bundle):
    subtab = SubTab(SubTabConfig(seed=0))
    subtab.fit(bundle.frame, binned=bundle.binned)
    return subtab


def test_binning_speed(benchmark, bundle):
    binner = TableBinner(n_bins=5, seed=0)
    result = benchmark(binner.bin_table, bundle.dataset.frame)
    assert result.n_rows == ROWS


def test_corpus_and_word2vec_speed(benchmark, bundle):
    def train():
        sentences = build_corpus(bundle.binned, mode="rows", seed=0)
        model = Word2Vec(
            bundle.binned.n_tokens, Word2VecConfig(epochs=1), seed=0
        )
        model.train(sentences)
        return model

    model = benchmark.pedantic(train, rounds=1, iterations=1)
    assert model.vectors.shape[0] == bundle.binned.n_tokens


def test_rule_mining_speed(benchmark, bundle):
    miner = RuleMiner()
    rules = benchmark.pedantic(
        miner.mine, args=(bundle.binned,), rounds=1, iterations=1
    )
    assert len(rules) > 0


def test_coverage_evaluation_speed(benchmark, bundle):
    rules = bundle.scorer().rules
    evaluator = CoverageEvaluator(bundle.binned, rules)
    rows = list(range(10))
    columns = bundle.binned.columns[:10]
    value = benchmark(evaluator.coverage, rows, columns)
    assert 0.0 <= value <= 1.0


def test_selection_speed(benchmark, fitted):
    """One centroid selection — the paper's per-display interactive cost."""
    result = benchmark(fitted.select, 10, 10)
    assert result.shape[0] == 10


# ---------------------------------------------------------------------------
# Kernel micro-timings (repro.core.kernels fast path)
# ---------------------------------------------------------------------------

def test_kernel_label_matrix_sums_speed(benchmark):
    import numpy as np

    from repro.core.kernels import label_matrix_sums

    rng = np.random.default_rng(0)
    matrix = rng.normal(size=(ROWS, 16))
    labels = rng.integers(0, 12, size=ROWS)
    sums = benchmark(label_matrix_sums, matrix, labels, 12)
    assert sums.shape == (12, 16)


def test_kernel_collapse_rows_speed(benchmark):
    import numpy as np

    from repro.core.kernels import collapse_rows

    rng = np.random.default_rng(0)
    pool = rng.normal(size=(64, 8))
    matrix = pool[rng.integers(0, 64, size=ROWS)]
    collapse = benchmark(collapse_rows, matrix)
    assert collapse.n_unique == 64


def test_kernel_seeding_speed(benchmark):
    import numpy as np

    from repro.cluster.kmeans import _kmeans_plus_plus
    from repro.utils.rng import ensure_rng

    rng = np.random.default_rng(0)
    points = rng.normal(size=(ROWS, 8))

    def seed_once():
        return _kmeans_plus_plus(points, 10, 4, ensure_rng(0))

    centers = benchmark(seed_once)
    assert centers.shape == (4, 10, 8)


def test_kernel_popcount_union_speed(benchmark):
    import numpy as np

    from repro.core.kernels import popcount, union_mask

    rng = np.random.default_rng(0)
    packed = np.packbits(
        rng.integers(0, 2, size=(200, ROWS), dtype=np.uint8), axis=1
    )

    def union_and_count():
        return popcount(union_mask(packed))

    count = benchmark(union_and_count)
    assert 0 < count <= ROWS


def test_kernel_gains_for_rows_speed(benchmark, bundle):
    import numpy as np

    from repro.metrics.coverage import IncrementalCoverage

    rules = bundle.scorer().rules
    evaluator = CoverageEvaluator(bundle.binned, rules)
    coverage = IncrementalCoverage(evaluator, bundle.binned.columns[:8])
    rows = np.arange(bundle.binned.n_rows)
    gains = benchmark(coverage.gains_for_rows, rows)
    assert gains.shape == (bundle.binned.n_rows,)
