"""Micro-benchmarks of the performance-critical substrates.

These time the inner loops that determine SubTab's interactive latency
(Fig. 9's story): binning, corpus + SGNS training, rule mining, coverage
evaluation, and one centroid selection.  Useful for catching performance
regressions independently of the figure-level experiments.
"""

import pytest

from repro.bench import load_bundle
from repro.binning import TableBinner
from repro.core import SubTab, SubTabConfig
from repro.embedding import Word2Vec, Word2VecConfig, build_corpus
from repro.metrics import CoverageEvaluator
from repro.rules import RuleMiner

ROWS = 1500


@pytest.fixture(scope="module")
def bundle():
    return load_bundle("cyber", n_rows=ROWS, seed=0)


@pytest.fixture(scope="module")
def fitted(bundle):
    subtab = SubTab(SubTabConfig(seed=0))
    subtab.fit(bundle.frame, binned=bundle.binned)
    return subtab


def test_binning_speed(benchmark, bundle):
    binner = TableBinner(n_bins=5, seed=0)
    result = benchmark(binner.bin_table, bundle.dataset.frame)
    assert result.n_rows == ROWS


def test_corpus_and_word2vec_speed(benchmark, bundle):
    def train():
        sentences = build_corpus(bundle.binned, mode="rows", seed=0)
        model = Word2Vec(
            bundle.binned.n_tokens, Word2VecConfig(epochs=1), seed=0
        )
        model.train(sentences)
        return model

    model = benchmark.pedantic(train, rounds=1, iterations=1)
    assert model.vectors.shape[0] == bundle.binned.n_tokens


def test_rule_mining_speed(benchmark, bundle):
    miner = RuleMiner()
    rules = benchmark.pedantic(
        miner.mine, args=(bundle.binned,), rounds=1, iterations=1
    )
    assert len(rules) > 0


def test_coverage_evaluation_speed(benchmark, bundle):
    rules = bundle.scorer().rules
    evaluator = CoverageEvaluator(bundle.binned, rules)
    rows = list(range(10))
    columns = bundle.binned.columns[:10]
    value = benchmark(evaluator.coverage, rows, columns)
    assert 0.0 <= value <= 1.0


def test_selection_speed(benchmark, fitted):
    """One centroid selection — the paper's per-display interactive cost."""
    result = benchmark(fitted.select, 10, 10)
    assert result.shape[0] == 10
