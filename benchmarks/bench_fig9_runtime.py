"""Figure 9 — SubTab's running time split: pre-processing vs selection.

Paper numbers: pre-processing takes up to 90 s (worst on the all-numeric CC
dataset despite it having fewer rows than FL, because every column must be
KDE-binned); centroid selection takes only 1-5 s per display on all
datasets — the reuse of embeddings is what makes query-time display
interactive.

Reproduction target: selection is a small fraction of pre-processing on
every dataset, and CC pays more binning per row than any other dataset.
"""

from repro.bench import run_runtime_experiment


def test_fig9_runtime_split(benchmark, once, capsys):
    result = once(
        benchmark,
        run_runtime_experiment,
        dataset_names=("flights", "credit", "spotify", "cyber"),
        seed=0,
    )
    with capsys.disabled():
        print()
        print(result.render())

    for name in result.preprocess:
        assert result.select[name] < result.preprocess[name], name
    # CC (all-numeric) pays the most per-row pre-processing among the
    # similarly-sized datasets.
    credit_per_row = result.preprocess["credit"] / result.rows["credit"]
    spotify_per_row = result.preprocess["spotify"] / result.rows["spotify"]
    cyber_per_row = result.preprocess["cyber"] / result.rows["cyber"]
    assert credit_per_row > spotify_per_row
    assert credit_per_row > cyber_per_row
