"""Figure 6 — simulation-based study over EDA sessions (CY dataset).

Paper numbers: replaying 122 recorded sessions over the cyber-security
dataset, SubTab captures 14% (width 3) to 38% (width 7) of next-query
fragments, consistently above RAN and NC, and capture improves with width.

Reproduction target: capture rate grows with sub-table width; SubTab above
NC at every width (synthetic sessions are data-driven, so absolute rates
run higher than with human analysts).
"""

from repro.bench import run_session_experiment


def test_fig6_session_replay(benchmark, once, capsys):
    result = once(
        benchmark,
        run_session_experiment,
        n_rows=1500,
        n_sessions=20,
        seed=0,
    )
    with capsys.disabled():
        print()
        print(result.render())

    subtab = result.rates["SubTab"]
    nc = result.rates["NC"]
    widths = sorted(subtab.keys())
    # capture improves with width for SubTab
    assert subtab[widths[-1]] > subtab[widths[0]]
    # SubTab above NC on average and at the extremes
    mean_subtab = sum(subtab.values()) / len(subtab)
    mean_nc = sum(nc.values()) / len(nc)
    assert mean_subtab > mean_nc
