"""Gateway response cache — replayed-session QPS, cache on vs off.

The cache tentpole's measured claim: for replayed analyst sessions the
fingerprint-keyed response cache turns the HTTP front door into the
*fastest* path the stack offers, not merely a cheap one.  The open-loop
HTTP bench is arrival-limited and cannot show this, so this bench is
closed-loop: a deduplicated list of session-derived requests is replayed
``passes`` times, back to back, through three front ends of one
store-backed asyncio server (its own selection LRU pinned to one slot so
repeats always recompute):

1. **raw socket** — a blocking ``RemoteBackend``, the stack's floor;
2. **gateway, cache off** — ``HttpGateway`` with ``cache_size=0``, the
   price of HTTP parsing + auth + admission + the executor hop;
3. **gateway, cache on** — a fresh gateway whose response cache serves
   passes 2+ from stored entry bytes without touching the backend.

Correctness is asserted inside the experiment and again here: the cached
reply is byte-identical to the cold one (``X-Cache: miss`` → ``hit``,
strong ``ETag`` match) and a conditional request round-trips ``304 Not
Modified`` with an empty body.

Output: ``benchmarks/out/bench_http_cache.json`` (override the directory
with ``REPRO_BENCH_OUT``).  The committed trajectory record lives at the
repo root as ``BENCH_http_cache.json`` and gates in CI via
``scripts/ci/bench_gate.py``.
"""

import json
import os
from pathlib import Path

from repro.bench import run_http_cache_experiment

DEFAULT_OUT_DIR = Path(__file__).resolve().parent / "out"


def _out_path() -> Path:
    out_dir = Path(os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT_DIR))
    out_dir.mkdir(parents=True, exist_ok=True)
    return out_dir / "bench_http_cache.json"


def test_http_cache(benchmark, once, capsys):
    result = once(
        benchmark,
        run_http_cache_experiment,
        dataset_name="cyber",
        n_requests=16,
        passes=5,
        sessions_per_dataset=8,
        k=10,
        l=7,
        seed=0,
        window=64,
        cache_size=256,
    )
    with capsys.disabled():
        print()
        print(result.render())

    payload = result.to_json()
    path = _out_path()
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    with capsys.disabled():
        print(f"wrote {path}")

    # Every leg served the identical replay, error-free.
    assert result.raw_socket["errors"] == 0
    assert result.cache_off["errors"] == 0
    assert result.cache_on["errors"] == 0
    assert result.cache_on["requests"] == result.cache_off["requests"]

    # The replay populated on pass 1 and served the rest from entries
    # (the identity probe adds one miss/store before the timed replay).
    assert result.cache_counters.get("hits", 0) > 0
    assert result.cache_counters.get("misses", 0) \
        >= result.n_requests

    # The correctness proofs baked into the record.
    assert result.bit_identical
    assert result.revalidated_304

    # The headline: caching the front door pays for the whole stack —
    # at least 3x the uncached gateway on this replay.
    assert result.speedup >= 3.0, (
        f"cache-on/cache-off speedup {result.speedup:.2f}x < 3x"
    )
