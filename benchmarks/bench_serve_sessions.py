"""Session-serving latency — cold vs. cached select() (serving layer).

The serving layer's claim: fit once, precompute the full-table vectors, and
session replay (revisited states, back-navigation, shared dashboards) is
answered from the selection LRU without re-running clustering.  This
benchmark replays synthetic EDA sessions through :class:`SubTabService`,
records per-select wall-clock for the cold pass (every state distinct, LRU
empty) and the cached pass (full replay, every select an LRU hit), and
emits a JSON record so the serving trajectory can be tracked run over run.

Output: ``benchmarks/out/bench_serve_sessions.json`` (override the
directory with ``REPRO_BENCH_OUT``).

Reproduction target: cached replay is measurably faster than cold
selection — the mean cached select must beat the mean cold select by a wide
margin, and every replayed step must hit the cache.
"""

import json
import os
from pathlib import Path

from repro.bench import run_serve_session_experiment

DEFAULT_OUT_DIR = Path(__file__).resolve().parent / "out"


def _out_path() -> Path:
    out_dir = Path(os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT_DIR))
    out_dir.mkdir(parents=True, exist_ok=True)
    return out_dir / "bench_serve_sessions.json"


def test_serve_session_replay_latency(benchmark, once, capsys):
    result = once(
        benchmark,
        run_serve_session_experiment,
        dataset_name="cyber",
        n_sessions=12,
        n_rows=1500,
        k=10,
        l=7,
        seed=0,
    )
    with capsys.disabled():
        print()
        print(result.render())

    payload = result.to_json()
    path = _out_path()
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    with capsys.disabled():
        print(f"wrote {path}")

    # The serving layer must actually serve: selections happened, replay hit
    # the cache on every step, and cached selects are measurably faster.
    assert result.cold_times, "no cold selections ran"
    assert result.cached_times, "no cached selections ran"
    assert result.cache["hits"] >= len(result.cached_times)
    assert result.cached_mean < result.cold_mean / 10, (
        f"cached mean {result.cached_mean:.6f}s not measurably faster than "
        f"cold mean {result.cold_mean:.6f}s"
    )
