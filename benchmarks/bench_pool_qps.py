"""Pooled serving throughput — EnginePool vs. one warm engine (serving layer).

The scale-out claim: the fitted artifact makes multi-process serving cheap
(workers ``Engine.load`` it and skip normalize/bin/embed entirely), and
hash-routed pooling shards the selection LRUs so the pool's aggregate cache
capacity is ``workers x cache_size``.  This benchmark serves the same
cyclic session workload — more distinct states than one process's LRU
holds, the LRU-adversarial access pattern — through a single warm-started
engine and through ``EnginePool(workers=4)``, and records both paths'
aggregate QPS to JSON.

On a single-core host the pooled win is pure cache sharding (the workers
time-share the CPU); on multi-core hosts CPU parallelism compounds it.

Output: ``benchmarks/out/bench_pool_qps.json`` (override the directory
with ``REPRO_BENCH_OUT``).  The committed trajectory record lives at the
repo root as ``BENCH_pool_qps.json``.

Reproduction target: pooled aggregate QPS is at least 2x the
single-process warm-LRU baseline, with every repeated round served from
the workers' sharded LRUs.
"""

import json
import os
from pathlib import Path

from repro.bench import run_pool_qps_experiment

DEFAULT_OUT_DIR = Path(__file__).resolve().parent / "out"


def _out_path() -> Path:
    out_dir = Path(os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT_DIR))
    out_dir.mkdir(parents=True, exist_ok=True)
    return out_dir / "bench_pool_qps.json"


def test_pool_qps_vs_single_warm_lru(benchmark, once, capsys):
    result = once(
        benchmark,
        run_pool_qps_experiment,
        dataset_name="cyber",
        n_sessions=12,
        n_rows=1500,
        k=10,
        l=7,
        seed=0,
        workers=4,
        rounds=6,
        routing="hash",
    )
    with capsys.disabled():
        print()
        print(result.render())

    payload = result.to_json()
    path = _out_path()
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    with capsys.disabled():
        print(f"wrote {path}")

    # The pool must actually pool: every worker served requests, the
    # sharded LRUs caught the repeated rounds, and aggregate throughput
    # beats the single warm process by the reproduction target's margin.
    assert result.n_states > result.cache_size, (
        "workload too small to stress the single-process LRU"
    )
    assert result.pool["served"] == result.baseline["served"]
    assert all(count > 0 for count in result.pool["per_worker"].values()), (
        f"idle workers: {result.pool['per_worker']}"
    )
    assert result.pool["hits"] >= result.n_states * (result.rounds - 2), (
        f"sharded LRUs missed repeated rounds: {result.pool}"
    )
    assert result.speedup >= 2.0, (
        f"pooled QPS {result.pool['qps']:.1f} is only {result.speedup:.2f}x "
        f"the single-process baseline {result.baseline['qps']:.1f}"
    )
