"""Benchmark configuration.

Each benchmark regenerates one table or figure from the paper's Section 6
and prints the same rows/series the paper reports.  Experiments run once
per benchmark (pedantic mode, 1 round): the interesting quantity is the
experiment's output and its wall-clock, not statistical timing noise.

Scale: row counts default to laptop-friendly sizes (see
``repro.bench.harness.BENCH_ROWS``); set the environment variable
``REPRO_SCALE`` to run closer to paper scale.
"""

import pytest


def run_once(benchmark, fn, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once():
    return run_once
