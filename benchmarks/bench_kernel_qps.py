"""Vectorized-kernel throughput + sampling-based Greedy tradeoff curve.

Two claims ride on this record.  First, the kernel claim: after moving
the per-row/per-cluster python loops (k-means++ seeding, lockstep Lloyd,
centroid accumulation, row collapse, coverage unions) onto batched numpy
primitives — bit-identical to the ``REPRO_KERNEL=reference`` loops by
construction — a *cold* single engine (``use_cache=False``, every select
pays the full pipeline) serves at least 3x the committed ~78.6 QPS
single-engine figure from ``BENCH_pool_qps.json`` on the same workload
shape.  The per-stage profile (fast vs reference backend on the same
selects) records where the time went.

Second, the Sec. 4 approximation claim: the registry's ``greedy-approx``
(stochastic greedy, ``(1 - 1/e - eps)`` expected bound) trades a bounded
coverage loss for a large latency win over exact Greedy.  The tradeoff
sweep runs both — plus SubTab for scale — on every registry dataset and
must find a sampled point with >= 5x lower select latency at <= 5% cell
-coverage loss on at least one dataset.

Output: ``benchmarks/out/bench_kernel_qps.json`` (override the directory
with ``REPRO_BENCH_OUT``).  The committed record lives at the repo root
as ``BENCH_kernel_qps.json`` and is gated by ``scripts/ci/bench_gate.py``.
"""

import json
import os
from pathlib import Path

from repro.bench import run_kernel_qps_experiment

DEFAULT_OUT_DIR = Path(__file__).resolve().parent / "out"
REPO_ROOT = Path(__file__).resolve().parent.parent

#: QPS floor = 3x the committed single-engine baseline of the pool bench
#: (same dataset, k, l, seed, and session-state workload shape).
BASELINE_MULTIPLE = 3.0


def _out_path() -> Path:
    out_dir = Path(os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT_DIR))
    out_dir.mkdir(parents=True, exist_ok=True)
    return out_dir / "bench_kernel_qps.json"


def _committed_baseline_qps() -> float:
    record = json.loads((REPO_ROOT / "BENCH_pool_qps.json").read_text())
    return float(record["baseline"]["qps"])


def test_kernel_qps_and_greedy_approx_tradeoff(benchmark, once, capsys):
    result = once(
        benchmark,
        run_kernel_qps_experiment,
        dataset_name="cyber",
        n_sessions=12,
        n_rows=1500,
        k=10,
        l=7,
        seed=0,
        max_states=48,
        passes=5,
        committed_baseline_qps=_committed_baseline_qps(),
    )
    with capsys.disabled():
        print()
        print(result.render())

    payload = result.to_json()
    path = _out_path()
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    with capsys.disabled():
        print(f"wrote {path}")

    # Kernel claim: cold selects beat the committed baseline by 3x on the
    # same workload shape, and the profile shows the fast backend actually
    # ran faster than the reference loops it mirrors.
    assert result.speedup_vs_committed >= BASELINE_MULTIPLE, (
        f"cold QPS {result.cold['qps']:.1f} is only "
        f"{result.speedup_vs_committed:.2f}x the committed "
        f"{result.committed_baseline_qps:.1f} QPS baseline"
    )
    fast = result.profile["fast"]
    reference = result.profile["reference"]
    assert fast["select_total"] > 0 and reference["select_total"] > 0
    assert fast["select_total"] < reference["select_total"], (
        f"fast backend not faster end-to-end: {result.profile}"
    )

    # Approximation claim: on at least one registry dataset a sampled
    # point is >= 5x faster than exact greedy within 5% coverage loss.
    assert len(result.tradeoff) >= 5, "tradeoff must sweep the registry"
    best = result.best_tradeoff_point()
    assert best is not None, "no sampled point within 5% coverage loss"
    assert best["speedup"] >= 5.0, (
        f"best within-5%-loss point is only {best['speedup']:.1f}x "
        f"({best['dataset']} @ rate {best['sample_rate']})"
    )
