"""Open-loop load harness — the saturation knee of one async server.

The closed-loop QPS benchmarks (pool/cluster/async) measure ceilings:
how fast a topology drains a queue that is always full.  This benchmark
measures what analysts experience on the way to that ceiling: seeded
sessions arrive open-loop (Poisson arrivals at a fixed rate, exponential
think times, zipf-skewed dataset popularity) against one multi-dataset
``spawn_store_server`` subprocess, and arrivals never wait for
completions — so once the server saturates, queueing delay lands in the
latency percentiles instead of silently throttling offered load.

The sweep raises the arrival rate until the achieved/offered ratio
drops; the *knee* is the highest rate still delivering >=90%.  Every
request carries a trace id, so the record also pins per-stage p50s
(client queue / transport / server / backend / select) across a real
socket hop — the telemetry substrate's end-to-end proof.

Reproducibility is asserted, not assumed: each schedule is built twice
from its seed and the fingerprints must match before a single request
is sent.

Output: ``benchmarks/out/bench_loadgen.json`` (override the directory
with ``REPRO_BENCH_OUT``).  The committed trajectory record lives at the
repo root as ``BENCH_loadgen.json``.
"""

import json
import os
from pathlib import Path

from repro.bench import run_loadgen_experiment

DEFAULT_OUT_DIR = Path(__file__).resolve().parent / "out"


def _out_path() -> Path:
    out_dir = Path(os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT_DIR))
    out_dir.mkdir(parents=True, exist_ok=True)
    return out_dir / "bench_loadgen.json"


def test_loadgen_knee(benchmark, once, capsys):
    # The two low rates leave headroom (long scheduled spans, warm LRU);
    # the top rate compresses 48 arrivals into under a second, which one
    # core cannot absorb — the knee must land between them.
    result = once(
        benchmark,
        run_loadgen_experiment,
        dataset_names=("cyber", "flights"),
        arrival_rates=(4.0, 8.0, 64.0),
        n_sessions=48,
        sessions_per_dataset=8,
        n_rows=900,
        k=10,
        l=7,
        seed=0,
        window=64,
    )
    with capsys.disabled():
        print()
        print(result.render())

    payload = result.to_json()
    path = _out_path()
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    with capsys.disabled():
        print(f"wrote {path}")

    # Open loop delivered: every rate ran every scheduled session to the
    # end with zero backend errors (generated degenerate states may be
    # rejected; that is workload shape, not serving failure).
    assert len(result.runs) == 3
    for record in result.runs.values():
        assert record["completed_sessions"] == record["offered_sessions"]
        assert record["errors"] == 0
        assert record["completed_requests"] > 0
        assert record["latency"]["count"] == record["completed_requests"]

    # The schedule is a pure function of its seed (the experiment builds
    # each one twice and compares), and the zipf mix touched every
    # dataset with rank-1 hottest.
    assert result.schedule_fingerprint
    mix = result.dataset_mix
    assert set(mix) == {"cyber", "flights"}
    assert mix["cyber"] > mix["flights"]

    # Latency percentiles are ordered and the knee exists at some rate.
    for record in result.runs.values():
        latency = record["latency"]
        assert latency["p50"] <= latency["p95"] <= latency["p99"]
    assert result.knee is not None, "even the lowest rate saturated"

    # Trace ids crossed the socket hop: the client reassembled per-stage
    # timings for both its own stages and the server-side ones.
    assert result.trace_example and result.trace_example["id"]
    stages = {stage["stage"] for stage in result.trace_example["stages"]}
    assert {"server", "transport"} <= stages
    assert {"client_queue", "transport", "server"} <= set(result.trace_stages)
