"""Figure 7 — quality and wall-clock of the slow baselines (FL dataset).

Paper numbers: combined scores on FL roughly Greedy 0.63 > SubTab 0.61 =
EmbDI 0.61 > MAB 0.53 > RAN 0.45, while SubTab's total time (pre-processing
+ selection, ~1.5 min) is ~26x below EmbDI's (~40 min) and orders of
magnitude below MAB/Greedy (24-48 h runs).

Reproduction target: Greedy's quality is at least SubTab's (it directly
optimizes cell coverage); EmbDI's quality is comparable to SubTab's at a
multiple of the cost; SubTab is the fastest of the non-trivial methods.
Budgets are scaled (see DESIGN.md) so the bench completes in minutes.
"""

from repro.bench import run_slow_baselines_experiment


def test_fig7_slow_baselines(benchmark, once, capsys):
    result = once(
        benchmark,
        run_slow_baselines_experiment,
        n_rows=1500,
        ran_budget=2.0,
        mab_iterations=300,
        greedy_max_combinations=25,
        embdi_walks=3,
        seed=0,
    )
    with capsys.disabled():
        print()
        print(result.render())

    quality = result.quality
    seconds = result.seconds
    # Greedy directly optimizes coverage: at least SubTab's quality (slack
    # for its missing diversity term).
    assert quality["Greedy"] >= quality["SubTab"] - 0.1
    # EmbDI: comparable quality to SubTab...
    assert abs(quality["EmbDI"] - quality["SubTab"]) < 0.25
    # ...at a clear wall-clock multiple.
    assert seconds["EmbDI"] > 2.0 * seconds["SubTab"]
    # Greedy (rule mining + enumeration) is slower than SubTab end to end.
    assert seconds["Greedy"] > seconds["SubTab"]
