"""HTTP gateway throughput — the front door vs the raw socket path.

The gateway satellite's measured claim: putting an HTTP/1.1 face (with
API-key tenancy and admission control) on the serving stack keeps it a
*front door*, not a bottleneck.  One store-backed asyncio server
subprocess hosts the fitted engine; the same seeded open-loop schedule
is replayed twice:

1. **raw socket** — a pipelined ``AsyncRemoteBackend``, the fastest
   client the stack offers (the upper bound on what the server leg can
   deliver for this workload);
2. **http gateway** — an ``HttpGateway`` fronting an identical pipelined
   client, driven by three authenticated tenants round-robinning their
   sessions over keep-alive HTTP connections, exactly how external
   tooling would arrive.

Both legs rebuild the schedule from the same seed and assert fingerprint
equality, so the committed record doubles as a reproducibility proof —
and both must serve the whole workload with zero errors (admission is
configured wide; this bench measures overhead, not shedding).

Output: ``benchmarks/out/bench_http_qps.json`` (override the directory
with ``REPRO_BENCH_OUT``).  The committed trajectory record lives at the
repo root as ``BENCH_http_qps.json`` and gates in CI via
``scripts/ci/bench_gate.py``.
"""

import json
import os
from pathlib import Path

from repro.bench import run_http_qps_experiment

DEFAULT_OUT_DIR = Path(__file__).resolve().parent / "out"


def _out_path() -> Path:
    out_dir = Path(os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT_DIR))
    out_dir.mkdir(parents=True, exist_ok=True)
    return out_dir / "bench_http_qps.json"


def test_http_qps(benchmark, once, capsys):
    result = once(
        benchmark,
        run_http_qps_experiment,
        dataset_name="cyber",
        arrival_rate=8.0,
        n_sessions=24,
        sessions_per_dataset=8,
        n_rows=1500,
        k=10,
        l=7,
        seed=0,
        window=64,
        n_tenants=3,
    )
    with capsys.disabled():
        print()
        print(result.render())

    payload = result.to_json()
    path = _out_path()
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    with capsys.disabled():
        print(f"wrote {path}")

    # The workload regenerated bit-identically for both legs.
    assert result.schedule_fingerprint
    assert result.raw_socket["schedule_fingerprint"] \
        == result.schedule_fingerprint
    assert result.gateway["schedule_fingerprint"] \
        == result.schedule_fingerprint

    # Both front ends served the whole workload, error-free (generated
    # degenerate states are rejected identically on both paths).
    assert result.raw_socket["errors"] == 0
    assert result.gateway["errors"] == 0
    assert result.gateway["completed_requests"] \
        == result.raw_socket["completed_requests"]
    assert result.gateway["rejected"] == result.raw_socket["rejected"]

    # Every tenant genuinely carried traffic through the front door.
    assert len(result.tenant_served) == 3
    assert all(count > 0 for count in result.tenant_served.values()), (
        f"idle tenant: {result.tenant_served}"
    )
    # No request was shed: this record measures overhead, not admission.
    assert result.gateway_status.get("4xx", 0) == 0
    assert result.gateway_status.get("5xx", 0) == 0

    # The front door must stay in the same league as the raw socket.
    # Open-loop with think times is latency-tolerant, so the bar guards
    # against pathology (a serialized gateway, a per-request dial), not
    # against the honest per-request parsing cost.
    assert result.gateway_fraction > 0.5, (
        f"gateway delivers only {result.gateway_fraction:.2f}x the raw "
        f"socket throughput ({result.gateway['achieved_qps']:.1f} vs "
        f"{result.raw_socket['achieved_qps']:.1f} QPS)"
    )
