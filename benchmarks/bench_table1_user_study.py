"""Table 1 + Figure 5 — the simulated user study.

Paper numbers (15 participants, SP/FL/BL, rule coloring on SP and FL only):

    Table 1: # correct insights  SubTab 4 (85%) | RAN 1.2 (30%) | NC 0.2 (6%)
             % users w/o insights        0%     |     12%       |    89%
             # total insights           4.5     |    3.67       |   1.5
    Fig. 5:  SubTab rated > 4 on all four questions, above RAN and NC.

Reproduction target: the *ordering* — SubTab finds the most correct
insights with the highest correctness rate; NC trails on both; ratings
rank SubTab first.
"""

from repro.bench import run_user_study_experiment


def test_table1_and_fig5_user_study(benchmark, once, capsys):
    result = once(
        benchmark,
        run_user_study_experiment,
        n_rows=1500,
        n_participants=15,
        ran_budget=2.0,
        seed=0,
    )
    with capsys.disabled():
        print()
        print(result.render())

    study = result.study
    assert study["SubTab"].avg_correct_insights >= study["NC"].avg_correct_insights
    assert study["SubTab"].avg_correct_insights >= study["RAN"].avg_correct_insights
    assert study["SubTab"].pct_correct >= study["NC"].pct_correct
    assert study["SubTab"].pct_no_insights <= study["NC"].pct_no_insights

    ratings = result.ratings
    for question in ("satisfaction", "usefulness", "column_quality", "row_quality"):
        assert getattr(ratings["SubTab"], question) >= getattr(
            ratings["NC"], question
        ) - 0.1
