"""Async transport throughput — pipelined frames and read-from-replica.

Two serving-layer claims, measured on one machine with the cyclic session
workload of the pool/cluster benchmarks:

1. **Pipelining beats round-tripping on the same single member.**  The
   sync ``RemoteBackend`` can never have more than one frame in flight
   per connection, so every request pays the full encode → socket →
   dispatch → decode chain in sequence.  The pipelined
   ``AsyncRemoteBackend`` streams the same requests as id-tagged frames
   (``window`` in flight, corked burst writes, micro-batched server
   dispatch), amortizing the per-frame syscalls and thread handoffs.

2. **Read replicas beat failover-only replication.**  A 2-member
   ``replication=2`` ring is served under ``primary`` (replicas are
   failover-only, consistent hashing splits traffic unevenly) and
   ``round_robin`` (every replica serves reads, traffic balances).  The
   committed failover-only 2-member record from ``BENCH_cluster_qps.json``
   (89.6 QPS over the sync transport) is embedded as the trajectory
   reference this PR is measured against.

3. **Cache-affinity routing recovers round-robin's duplicated cold
   misses.**  ``round_robin`` alternates the *same* request hash across
   replicas, so every distinct state is computed cold once per replica
   (the committed trajectory shows the price: ~209 QPS vs primary's
   ~409).  The ``hash`` policy serves reads from every replica but pins
   each request hash to one owner — balanced split, every state cold
   exactly once — and must out-serve round-robin on the same ring.

On a single-core container, balancing cannot buy CPU parallelism and
round-robin pays each state's cold miss once per replica, so ``primary``
stays ahead in wall-clock there; the round-robin record is the honest
single-core price of keeping every replica's LRU read-warm, and it still
clears the committed failover-only reference by an integer factor thanks
to the pipelined member clients.  On multi-core hosts the balanced split
(``per_member`` is even under round-robin and hash) converts into real
scaling.

Output: ``benchmarks/out/bench_async_qps.json`` (override the directory
with ``REPRO_BENCH_OUT``).  The committed trajectory record lives at the
repo root as ``BENCH_async_qps.json``.
"""

import json
import os
from pathlib import Path

from repro.bench import run_async_qps_experiment

DEFAULT_OUT_DIR = Path(__file__).resolve().parent / "out"
CLUSTER_REFERENCE = (
    Path(__file__).resolve().parent.parent / "BENCH_cluster_qps.json"
)


def _out_path() -> Path:
    out_dir = Path(os.environ.get("REPRO_BENCH_OUT", DEFAULT_OUT_DIR))
    out_dir.mkdir(parents=True, exist_ok=True)
    return out_dir / "bench_async_qps.json"


def test_async_qps(benchmark, once, capsys):
    result = once(
        benchmark,
        run_async_qps_experiment,
        dataset_name="cyber",
        n_sessions=12,
        n_rows=1500,
        k=10,
        l=7,
        seed=0,
        window=64,
        rounds=6,
        cluster_reference_path=str(CLUSTER_REFERENCE),
    )
    with capsys.disabled():
        print()
        print(result.render())

    payload = result.to_json()
    path = _out_path()
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    with capsys.disabled():
        print(f"wrote {path}")

    # Every path served the whole workload without failovers.
    expected = result.n_states * result.rounds
    for record in (result.sync_client, result.pipelined_client,
                   result.replica_primary, result.replica_round_robin,
                   result.replica_hash):
        assert record["served"] == expected
    for record in (result.replica_primary, result.replica_round_robin,
                   result.replica_hash):
        assert record["errors"] == 0
        assert record["failovers"] == 0

    # Claim 1: the pipelined client out-serves sync round trips on the
    # same single member (the margin is far larger than run-to-run noise).
    assert result.pipeline_speedup > 1.1, (
        f"pipelined client is only {result.pipeline_speedup:.2f}x the sync "
        f"client ({result.pipelined_client['qps']:.1f} vs "
        f"{result.sync_client['qps']:.1f} QPS)"
    )

    # Claim 2: replicas genuinely serve reads — the round-robin split is
    # balanced where primary's consistent-hash split is lopsided...
    spread = result.replica_round_robin["per_member"].values()
    assert max(spread) <= 1.5 * min(spread), (
        f"round-robin reads did not balance: "
        f"{result.replica_round_robin['per_member']}"
    )
    # ...and the read-replica ring clears the committed failover-only
    # 2-member record it supersedes.
    if result.cluster_reference:
        assert (result.replica_round_robin["qps"]
                > result.cluster_reference["qps"]), (
            f"read-replica ring ({result.replica_round_robin['qps']:.1f} "
            f"QPS) does not beat the committed failover-only 2-member "
            f"record ({result.cluster_reference['qps']:.1f} QPS)"
        )

    # Claim 3: cache-affinity routing splits work across both replicas
    # (the hash parity of the seeded state set decides the exact ratio,
    # so the bound only guards against one member going idle) but pays
    # each cold miss once, so it must out-serve round-robin...
    hash_spread = result.replica_hash["per_member"].values()
    assert min(hash_spread) >= 0.1 * sum(hash_spread), (
        f"hash routing left a replica idle: "
        f"{result.replica_hash['per_member']}"
    )
    assert result.affinity_gain > 1.1, (
        f"hash routing is only {result.affinity_gain:.2f}x round_robin "
        f"({result.replica_hash['qps']:.1f} vs "
        f"{result.replica_round_robin['qps']:.1f} QPS)"
    )
    # ...and clears the committed failover-only reference too.
    if result.cluster_reference:
        assert result.replica_hash["qps"] > result.cluster_reference["qps"]
