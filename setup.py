"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build an editable wheel.  This shim
lets ``python setup.py develop`` (and legacy-mode pip) install the package
from ``pyproject.toml`` metadata instead.
"""

from setuptools import setup

setup()
