"""Package metadata for the SubTab reproduction.

Kept as a classic ``setup.py`` (no ``pyproject.toml``): the offline
environment lacks the ``wheel`` package, so PEP 660 editable installs
cannot build an editable wheel, while ``python setup.py develop`` and
legacy-mode pip work from this metadata directly.
"""

import os

from setuptools import find_packages, setup

_here = os.path.dirname(os.path.abspath(__file__))
_readme = os.path.join(_here, "README.md")
long_description = ""
if os.path.exists(_readme):
    with open(_readme, encoding="utf-8") as handle:
        long_description = handle.read()

setup(
    name="subtab-repro",
    version="1.1.0",
    description=(
        'Reproduction of "Selecting Sub-tables for Data Exploration" '
        "(ICDE 2023) with a session-serving engine"
    ),
    long_description=long_description,
    long_description_content_type="text/markdown",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy",
        "networkx",
    ],
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Information Analysis",
    ],
)
